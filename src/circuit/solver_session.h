#pragma once
/// \file solver_session.h
/// SolverSession: the transient engine's solver state as an explicit
/// object instead of `runTransient`-local variables. One session = one
/// transient run of one Circuit, with its state split along the three
/// lifetimes of circuit/solver_state.h:
///
///   - symbolic state      — the sparse base pattern and its RCM ordering
///                           (sparse mode only; dense modes have none);
///   - numeric base state  — the assembled static base matrix and its LU
///                           factorization (dense or sparse);
///   - per-run workspaces  — Newton solution vectors, the RHS/Jacobian
///                           working system, and the dirtied-matrix
///                           refactorization — never shared.
///
/// Without sharing, run() executes byte-for-byte the algorithm the old
/// monolithic runTransient did (the equivalence suite pins this across all
/// three solver modes); runTransient itself is now a thin wrapper that
/// constructs a session and runs it. With TransientOptions::sharing set,
/// the session checks the first two pieces out of a SolverStateProvider:
/// the first run of a class builds the state from its own (bit-identical)
/// inputs and publishes it, every later run skips the RCM analysis and/or
/// the base LU factorization entirely. That turns an N-corner RHS-only
/// sweep's N base factorizations into exactly one per numeric-base class —
/// the source paper's build-once-use-everywhere economy applied to the
/// solver itself.

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/solver_state.h"
#include "circuit/transient.h"
#include "math/sparse_matrix.h"

namespace fdtdmm {

/// One transient run with explicit, separable solver state. Construction
/// validates the options; run() validates the probes, assembles, and
/// integrates. A session is single-use: elements accumulate companion
/// history across the run, so call run() exactly once.
class SolverSession {
 public:
  /// \throws std::invalid_argument on bad options (non-positive dt/t_stop,
  ///         negative settle_time) — the same messages runTransient threw.
  SolverSession(Circuit& circuit, const TransientOptions& opt);

  /// Runs the transient analysis (see runTransient for the error
  /// contract; all its validation and exceptions happen here).
  TransientResult run(const std::vector<NodeProbe>& probes,
                      const std::vector<BranchProbe>& branch_probes = {});

  /// Unknown count after assignUnknowns (valid once run() started; 0
  /// before).
  std::size_t unknowns() const { return n_unknowns_; }

  /// Whether this run consumed shared state built by another session
  /// (valid after run()).
  bool reusedSharedBase() const { return reused_shared_base_; }
  bool reusedSharedSymbolic() const { return reused_shared_symbolic_; }

 private:
  void validateProbes(const std::vector<NodeProbe>& probes,
                      const std::vector<BranchProbe>& branch_probes) const;
  /// One-time static assembly into the mode's base target; sparse mode then
  /// resolves the shared symbolic state (checkout or build-and-publish).
  void assembleStatic(double* t_static, obs::RunTelemetry* tel);
  /// Allocates the per-run Newton/RHS workspace around the base.
  void allocateWorkspace();
  /// Lazily factors (or checks out) the base matrix on the first clean
  /// Newton iteration; returns true when a factorization actually ran
  /// (the caller counts it). Dense variant reads sys_.a, sparse variant
  /// reads work_sp_ — both hold untouched base values at the call sites.
  bool ensureBaseFactoredDense(double* t_factor, obs::RunTelemetry* tel);
  bool ensureBaseFactoredSparse(double* t_factor, obs::RunTelemetry* tel);
  /// End-of-run health probes (obs/health.h): one relative residual of the
  /// final solve against the current system, and (optionally) one Hager
  /// condition estimate on whichever factorization is cached — never a
  /// refactorization. `any_solve` gates the residual (x_new_ is garbage if
  /// no Newton iteration ever solved).
  void collectEndOfRunHealth(const obs::HealthOptions& hopt, obs::NumericalHealth& h,
                             bool any_solve);
  /// The base factorization to solve with (shared or private).
  const LuFactorization& baseLu() const {
    return shared_base_ ? shared_base_->dense : base_lu_;
  }
  const SparseLu& baseSlu() const {
    return shared_base_ ? shared_base_->sparse : base_slu_;
  }

  Circuit& circuit_;
  TransientOptions opt_;
  bool reuse_ = false;   ///< kReuseFactorization
  bool sparse_ = false;  ///< kSparse
  std::size_t n_unknowns_ = 0;

  // --- symbolic piece (sparse mode): base pattern + ordering ---
  SparseMatrix base_sp_;  ///< finalized static base (pattern + values)
  std::shared_ptr<const SolverSymbolic> shared_symbolic_;
  /// Pattern version right after assembly. Shared symbolic/numeric state
  /// describes *this* pattern; if dynamic stamps grow it before the first
  /// clean iteration, sharing falls back to private state so results stay
  /// bit-identical with a sharing-disabled run (which would RCM-order and
  /// factor the grown pattern).
  std::uint64_t assembled_pattern_version_ = 0;

  // --- numeric base piece: static base matrix + its factorization ---
  StampSystem base_;            ///< dense base matrix (reuse mode)
  LuFactorization base_lu_;     ///< private base LU when not shared
  SparseLu base_slu_;           ///< private sparse base LU when not shared
  std::shared_ptr<const SolverNumericBase> shared_base_;
  bool base_factored_ = false;

  // --- per-run Newton/RHS workspaces: never shared ---
  Vector x_;
  Vector x_new_;
  StampSystem sys_;
  SparseMatrix work_sp_;        ///< dirtied/value-refreshed sparse working copy
  LuFactorization work_lu_;     ///< refactored when a dynamic stamp dirties
  SparseLu work_slu_;
  Vector slu_scratch_;          ///< caller workspace for shared sparse solves
  bool matrix_was_dirtied_ = false;

  bool reused_shared_base_ = false;
  bool reused_shared_symbolic_ = false;
};

}  // namespace fdtdmm
