#include "circuit/transient.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <stdexcept>

#include "math/linear_solve.h"
#include "math/sparse_lu.h"
#include "math/sparse_matrix.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace fdtdmm {

namespace {

double nodeVoltage(const Vector& x, int n) {
  return n == 0 ? 0.0 : x[static_cast<std::size_t>(n - 1)];
}

}  // namespace

const char* transientSolverModeName(TransientSolverMode mode) {
  switch (mode) {
    case TransientSolverMode::kReuseFactorization:
      return "reuse_lu";
    case TransientSolverMode::kFullRestamp:
      return "full_restamp";
    case TransientSolverMode::kSparse:
      return "sparse";
  }
  return "unknown";
}

TransientSolverMode transientSolverModeFromName(const std::string& name) {
  if (name == "reuse_lu") return TransientSolverMode::kReuseFactorization;
  if (name == "full_restamp") return TransientSolverMode::kFullRestamp;
  if (name == "sparse") return TransientSolverMode::kSparse;
  throw std::invalid_argument("unknown transient solver mode '" + name +
                              "' (valid: reuse_lu, full_restamp, sparse)");
}

std::vector<std::string> transientSolverModeNames() {
  return {"reuse_lu", "full_restamp", "sparse"};
}

TransientResult runTransient(Circuit& circuit, const TransientOptions& opt,
                             const std::vector<NodeProbe>& probes,
                             const std::vector<BranchProbe>& branch_probes) {
  if (opt.dt <= 0.0) throw std::invalid_argument("runTransient: dt must be > 0");
  if (opt.t_stop <= 0.0) throw std::invalid_argument("runTransient: t_stop must be > 0");
  if (opt.settle_time < 0.0) throw std::invalid_argument("runTransient: settle_time < 0");
  for (const auto& p : probes) {
    if (p.n1 < 0 || p.n1 > circuit.nodeCount() || p.n2 < 0 || p.n2 > circuit.nodeCount())
      throw std::invalid_argument("runTransient: probe node out of range");
  }
  for (const auto& p : branch_probes) {
    if (p.source == nullptr)
      throw std::invalid_argument("runTransient: branch probe without source");
  }
  // Probe labels key the result map; a collision (including a branch probe
  // shadowing a node probe) would silently drop a waveform.
  {
    std::set<std::string> labels;
    for (const auto& p : probes) {
      if (!labels.insert(p.label).second)
        throw std::invalid_argument("runTransient: duplicate probe label '" + p.label + "'");
    }
    for (const auto& p : branch_probes) {
      if (!labels.insert(p.label).second)
        throw std::invalid_argument("runTransient: duplicate probe label '" + p.label + "'");
    }
  }

  const std::size_t n_unknowns = circuit.assignUnknowns();
  auto& elements = circuit.elements();
  for (auto& e : elements) e->begin(opt.dt);

  // Telemetry sinks: null pointers when no sink is attached, so every
  // ScopedTimer below degenerates to a single branch (the disabled-span
  // contract of obs/counters.h). The trace span brackets the whole run and
  // is independently gated on an active TraceWriter.
  obs::RunTelemetry* const tel = opt.telemetry;
  double* const t_static = tel ? &tel->phases.stamp_static_seconds : nullptr;
  double* const t_factor = tel ? &tel->phases.factor_seconds : nullptr;
  double* const t_rhs = tel ? &tel->phases.rhs_stamp_seconds : nullptr;
  double* const t_solve = tel ? &tel->phases.solve_seconds : nullptr;
  double* const t_newton = tel ? &tel->phases.newton_seconds : nullptr;
  obs::TraceSpan run_span("transient", "solver");

  TransientResult result;
  std::vector<Vector> probe_data(probes.size());
  std::vector<Vector> branch_data(branch_probes.size());

  const bool reuse = opt.solver_mode == TransientSolverMode::kReuseFactorization;
  const bool sparse = opt.solver_mode == TransientSolverMode::kSparse;

  auto rejectStaticRhs = [](const Vector& b) {
    for (double v : b) {
      if (v != 0.0)
        throw std::logic_error(
            "runTransient: stampStatic wrote to the RHS; move that "
            "contribution into stampDynamic");
    }
  };

  // One-time assembly of the static (topology + dt) part of the MNA matrix
  // into the mode's target: a dense base matrix or a CSR base whose
  // finalize() fixes the symbolic pattern.
  StampSystem base;
  SparseMatrix base_sp;
  SparseMatrix work_sp;
  {
    obs::ScopedTimer stamp_static_timer(t_static);
    if (reuse) {
      base.a = Matrix(n_unknowns, n_unknowns);
      base.b.assign(n_unknowns, 0.0);
      for (auto& e : elements) e->stampStatic(base, opt.dt);
      rejectStaticRhs(base.b);
    } else if (sparse) {
      base_sp.reset(n_unknowns);
      base.sparse = &base_sp;
      base.b.assign(n_unknowns, 0.0);
      for (auto& e : elements) e->stampStatic(base, opt.dt);
      rejectStaticRhs(base.b);
      base_sp.finalize();
      work_sp = base_sp;
    }
  }

  // All per-iteration state is allocated here, once; the Newton loop below
  // only reuses this storage (matrix copy-assign, vector assign/resize).
  Vector x(n_unknowns, 0.0);
  Vector x_new(n_unknowns, 0.0);
  StampSystem sys;
  sys.b.assign(n_unknowns, 0.0);
  if (reuse) {
    sys.a = base.a;
  } else if (sparse) {
    sys.sparse = &work_sp;
  } else {
    sys.a = Matrix(n_unknowns, n_unknowns);
  }
  // base_lu: factorization of the untouched static matrix, created lazily on
  // the first Newton iteration whose dynamic stamps leave the matrix clean
  // (lazily so circuits whose base matrix alone is singular — e.g. a node
  // held up only by a nonlinear device — still work). work_lu: refactored in
  // place on every iteration that dirties the matrix. The sparse mode keeps
  // the same pair as SparseLu factorizations.
  LuFactorization base_lu;
  LuFactorization work_lu;
  SparseLu base_slu;
  SparseLu work_slu;
  bool base_factored = false;
  // Once any iteration dirties the matrix, the working matrix must be
  // restored from the clean base before each dynamic stamping pass.
  bool matrix_was_dirtied = false;

  const auto n_settle = static_cast<long long>(std::ceil(opt.settle_time / opt.dt));
  const auto n_run = static_cast<long long>(std::ceil(opt.t_stop / opt.dt));

  auto record = [&](const Vector& sol) {
    for (std::size_t p = 0; p < probes.size(); ++p) {
      probe_data[p].push_back(nodeVoltage(sol, probes[p].n1) -
                              nodeVoltage(sol, probes[p].n2));
    }
    for (std::size_t p = 0; p < branch_probes.size(); ++p) {
      branch_data[p].push_back(sol[branch_probes[p].source->branchIndex()]);
    }
  };

  for (long long step = -n_settle; step <= n_run; ++step) {
    const double t_new = static_cast<double>(step) * opt.dt;
    for (auto& e : elements) e->beginStep(t_new, opt.dt);

    // Newton iteration: repeatedly solve the linearized MNA system. The
    // newton phase times the loop only (endStep/probe recording is the
    // run's residual time, not part of any phase).
    int it = 0;
    bool step_converged = false;
    const auto newton_begin =
        t_newton ? obs::ScopedTimer::Clock::now() : obs::ScopedTimer::Clock::time_point{};
    for (; it < opt.max_newton_iterations; ++it) {
      if (reuse) {
        {
          obs::ScopedTimer rhs_timer(t_rhs);
          if (matrix_was_dirtied) sys.a = base.a;
          sys.b.assign(n_unknowns, 0.0);
          sys.matrix_dirty = false;
          for (auto& e : elements) e->stampDynamic(sys, x, t_new, opt.dt);
        }
        if (sys.matrix_dirty) {
          matrix_was_dirtied = true;
          {
            obs::ScopedTimer factor_timer(t_factor);
            work_lu.factor(sys.a);
          }
          ++result.lu_factorizations;
          obs::ScopedTimer solve_timer(t_solve);
          work_lu.solve(sys.b, x_new);
        } else {
          if (!base_factored) {
            // sys.a is still the untouched base matrix here.
            obs::ScopedTimer factor_timer(t_factor);
            base_lu.factor(sys.a);
            ++result.lu_factorizations;
            base_factored = true;
          }
          obs::ScopedTimer solve_timer(t_solve);
          base_lu.solve(sys.b, x_new);
        }
      } else if (sparse) {
        {
          obs::ScopedTimer rhs_timer(t_rhs);
          if (matrix_was_dirtied) work_sp.setValuesFrom(base_sp);
          sys.b.assign(n_unknowns, 0.0);
          sys.matrix_dirty = false;
          for (auto& e : elements) e->stampDynamic(sys, x, t_new, opt.dt);
        }
        if (work_sp.patternGrown()) {
          // A dynamic stamp hit a structurally-new entry: widen the working
          // pattern once and keep the cached base aligned so the in-place
          // value refresh above stays a straight copy. The base
          // factorization remains numerically valid (new entries are zero).
          work_sp.mergeOverflow();
          base_sp.adoptPatternOf(work_sp);
          if (tel) ++tel->pattern_realignments;
          obs::traceInstant("sparse_pattern_realign", "solver");
        }
        if (sys.matrix_dirty) {
          matrix_was_dirtied = true;
          {
            obs::ScopedTimer factor_timer(t_factor);
            work_slu.factor(work_sp);
          }
          ++result.lu_factorizations;
          obs::ScopedTimer solve_timer(t_solve);
          work_slu.solve(sys.b, x_new);
        } else {
          if (!base_factored) {
            // work_sp still holds the untouched base values here.
            obs::ScopedTimer factor_timer(t_factor);
            base_slu.factor(work_sp);
            ++result.lu_factorizations;
            base_factored = true;
          }
          obs::ScopedTimer solve_timer(t_solve);
          base_slu.solve(sys.b, x_new);
        }
      } else {
        {
          obs::ScopedTimer rhs_timer(t_rhs);
          std::fill_n(sys.a.data(), n_unknowns * n_unknowns, 0.0);
          sys.b.assign(n_unknowns, 0.0);
          for (auto& e : elements) e->stamp(sys, x, t_new, opt.dt);
        }
        {
          obs::ScopedTimer factor_timer(t_factor);
          work_lu.factor(sys.a);
        }
        ++result.lu_factorizations;
        obs::ScopedTimer solve_timer(t_solve);
        work_lu.solve(sys.b, x_new);
      }

      double max_dx = 0.0;
      for (std::size_t k = 0; k < n_unknowns; ++k) {
        double dxk = x_new[k] - x[k];
        if (!std::isfinite(dxk))
          throw std::runtime_error("runTransient: Newton diverged (non-finite update)");
        if (opt.max_delta_v > 0.0) dxk = std::clamp(dxk, -opt.max_delta_v, opt.max_delta_v);
        x[k] += dxk;
        max_dx = std::max(max_dx, std::abs(dxk));
      }
      if (max_dx <= opt.v_tolerance) {
        step_converged = true;
        ++it;
        break;
      }
    }
    if (t_newton) {
      *t_newton += std::chrono::duration<double>(obs::ScopedTimer::Clock::now() -
                                                 newton_begin)
                       .count();
    }
    if (!step_converged) result.converged = false;
    result.max_newton_iterations = std::max(result.max_newton_iterations, it);
    result.total_newton_iterations += it;

    for (auto& e : elements) e->endStep(x, t_new, opt.dt);
    if (step >= 0) {
      record(x);
      ++result.steps;
    }
  }

  for (std::size_t p = 0; p < probes.size(); ++p) {
    result.probes.emplace(probes[p].label, Waveform(0.0, opt.dt, std::move(probe_data[p])));
  }
  for (std::size_t p = 0; p < branch_probes.size(); ++p) {
    result.probes.emplace(branch_probes[p].label,
                          Waveform(0.0, opt.dt, std::move(branch_data[p])));
  }

  if (tel) {
    tel->lu_factorizations += result.lu_factorizations;
    tel->newton_iterations += result.total_newton_iterations;
    tel->max_newton_iterations =
        std::max(tel->max_newton_iterations, result.max_newton_iterations);
    tel->steps += static_cast<long long>(result.steps);
    ++tel->transient_runs;
  }
  run_span.setArgs("\"mode\": \"" + std::string(transientSolverModeName(opt.solver_mode)) +
                   "\", \"unknowns\": " + std::to_string(n_unknowns) +
                   ", \"steps\": " + std::to_string(result.steps) +
                   ", \"lu_factorizations\": " + std::to_string(result.lu_factorizations) +
                   ", \"newton_iterations\": " + std::to_string(result.total_newton_iterations));
  return result;
}

}  // namespace fdtdmm
