#include "circuit/transient.h"

#include <stdexcept>

#include "circuit/solver_session.h"

namespace fdtdmm {

const char* transientSolverModeName(TransientSolverMode mode) {
  switch (mode) {
    case TransientSolverMode::kReuseFactorization:
      return "reuse_lu";
    case TransientSolverMode::kFullRestamp:
      return "full_restamp";
    case TransientSolverMode::kSparse:
      return "sparse";
  }
  return "unknown";
}

TransientSolverMode transientSolverModeFromName(const std::string& name) {
  for (const auto& known : transientSolverModeNames()) {
    if (name == known) {
      if (known == "reuse_lu") return TransientSolverMode::kReuseFactorization;
      if (known == "full_restamp") return TransientSolverMode::kFullRestamp;
      return TransientSolverMode::kSparse;
    }
  }
  // Build the valid list from transientSolverModeNames() so a new mode can
  // never be forgotten in this message.
  std::string valid;
  for (const auto& known : transientSolverModeNames()) {
    if (!valid.empty()) valid += ", ";
    valid += known;
  }
  throw std::invalid_argument("unknown transient solver mode '" + name +
                              "' (valid: " + valid + ")");
}

std::vector<std::string> transientSolverModeNames() {
  return {"reuse_lu", "full_restamp", "sparse"};
}

// The transient engine proper lives in SolverSession (circuit/
// solver_session.h), which splits the solver state into symbolic /
// numeric-base / per-run pieces so the engine layer can share the first
// two across sweep corners. This wrapper preserves the original one-shot
// API — and, with default TransientOptions::sharing, the original
// behavior bit for bit.
TransientResult runTransient(Circuit& circuit, const TransientOptions& opt,
                             const std::vector<NodeProbe>& probes,
                             const std::vector<BranchProbe>& branch_probes) {
  SolverSession session(circuit, opt);
  return session.run(probes, branch_probes);
}

}  // namespace fdtdmm
