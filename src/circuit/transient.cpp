#include "circuit/transient.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/linear_solve.h"

namespace fdtdmm {

namespace {

double nodeVoltage(const Vector& x, int n) {
  return n == 0 ? 0.0 : x[static_cast<std::size_t>(n - 1)];
}

}  // namespace

TransientResult runTransient(Circuit& circuit, const TransientOptions& opt,
                             const std::vector<NodeProbe>& probes,
                             const std::vector<BranchProbe>& branch_probes) {
  if (opt.dt <= 0.0) throw std::invalid_argument("runTransient: dt must be > 0");
  if (opt.t_stop <= 0.0) throw std::invalid_argument("runTransient: t_stop must be > 0");
  if (opt.settle_time < 0.0) throw std::invalid_argument("runTransient: settle_time < 0");
  for (const auto& p : probes) {
    if (p.n1 < 0 || p.n1 > circuit.nodeCount() || p.n2 < 0 || p.n2 > circuit.nodeCount())
      throw std::invalid_argument("runTransient: probe node out of range");
  }
  for (const auto& p : branch_probes) {
    if (p.source == nullptr)
      throw std::invalid_argument("runTransient: branch probe without source");
  }

  const std::size_t n_unknowns = circuit.assignUnknowns();
  auto& elements = circuit.elements();
  for (auto& e : elements) e->begin(opt.dt);

  TransientResult result;
  std::vector<Vector> probe_data(probes.size());
  std::vector<Vector> branch_data(branch_probes.size());

  Vector x(n_unknowns, 0.0);
  StampSystem sys;

  const auto n_settle = static_cast<long long>(std::ceil(opt.settle_time / opt.dt));
  const auto n_run = static_cast<long long>(std::ceil(opt.t_stop / opt.dt));

  auto record = [&](const Vector& sol) {
    for (std::size_t p = 0; p < probes.size(); ++p) {
      probe_data[p].push_back(nodeVoltage(sol, probes[p].n1) -
                              nodeVoltage(sol, probes[p].n2));
    }
    for (std::size_t p = 0; p < branch_probes.size(); ++p) {
      branch_data[p].push_back(sol[branch_probes[p].source->branchIndex()]);
    }
  };

  for (long long step = -n_settle; step <= n_run; ++step) {
    const double t_new = static_cast<double>(step) * opt.dt;
    for (auto& e : elements) e->beginStep(t_new, opt.dt);

    // Newton iteration: repeatedly solve the linearized MNA system.
    int it = 0;
    bool step_converged = false;
    for (; it < opt.max_newton_iterations; ++it) {
      sys.a = Matrix(n_unknowns, n_unknowns);
      sys.b.assign(n_unknowns, 0.0);
      for (auto& e : elements) e->stamp(sys, x, t_new, opt.dt);
      Vector x_new = solveLinear(sys.a, sys.b);

      double max_dx = 0.0;
      for (std::size_t k = 0; k < n_unknowns; ++k) {
        double dxk = x_new[k] - x[k];
        if (!std::isfinite(dxk))
          throw std::runtime_error("runTransient: Newton diverged (non-finite update)");
        if (opt.max_delta_v > 0.0) dxk = std::clamp(dxk, -opt.max_delta_v, opt.max_delta_v);
        x[k] += dxk;
        max_dx = std::max(max_dx, std::abs(dxk));
      }
      if (max_dx <= opt.v_tolerance) {
        step_converged = true;
        ++it;
        break;
      }
    }
    if (!step_converged) result.converged = false;
    result.max_newton_iterations = std::max(result.max_newton_iterations, it);
    result.total_newton_iterations += it;

    for (auto& e : elements) e->endStep(x, t_new, opt.dt);
    if (step >= 0) {
      record(x);
      ++result.steps;
    }
  }

  for (std::size_t p = 0; p < probes.size(); ++p) {
    result.probes.emplace(probes[p].label, Waveform(0.0, opt.dt, std::move(probe_data[p])));
  }
  for (std::size_t p = 0; p < branch_probes.size(); ++p) {
    result.probes.emplace(branch_probes[p].label,
                          Waveform(0.0, opt.dt, std::move(branch_data[p])));
  }
  return result;
}

}  // namespace fdtdmm
