#include "circuit/transient.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "math/linear_solve.h"
#include "math/sparse_lu.h"
#include "math/sparse_matrix.h"

namespace fdtdmm {

namespace {

double nodeVoltage(const Vector& x, int n) {
  return n == 0 ? 0.0 : x[static_cast<std::size_t>(n - 1)];
}

}  // namespace

const char* transientSolverModeName(TransientSolverMode mode) {
  switch (mode) {
    case TransientSolverMode::kReuseFactorization:
      return "reuse_lu";
    case TransientSolverMode::kFullRestamp:
      return "full_restamp";
    case TransientSolverMode::kSparse:
      return "sparse";
  }
  return "unknown";
}

TransientSolverMode transientSolverModeFromName(const std::string& name) {
  if (name == "reuse_lu") return TransientSolverMode::kReuseFactorization;
  if (name == "full_restamp") return TransientSolverMode::kFullRestamp;
  if (name == "sparse") return TransientSolverMode::kSparse;
  throw std::invalid_argument("unknown transient solver mode '" + name +
                              "' (valid: reuse_lu, full_restamp, sparse)");
}

std::vector<std::string> transientSolverModeNames() {
  return {"reuse_lu", "full_restamp", "sparse"};
}

TransientResult runTransient(Circuit& circuit, const TransientOptions& opt,
                             const std::vector<NodeProbe>& probes,
                             const std::vector<BranchProbe>& branch_probes) {
  if (opt.dt <= 0.0) throw std::invalid_argument("runTransient: dt must be > 0");
  if (opt.t_stop <= 0.0) throw std::invalid_argument("runTransient: t_stop must be > 0");
  if (opt.settle_time < 0.0) throw std::invalid_argument("runTransient: settle_time < 0");
  for (const auto& p : probes) {
    if (p.n1 < 0 || p.n1 > circuit.nodeCount() || p.n2 < 0 || p.n2 > circuit.nodeCount())
      throw std::invalid_argument("runTransient: probe node out of range");
  }
  for (const auto& p : branch_probes) {
    if (p.source == nullptr)
      throw std::invalid_argument("runTransient: branch probe without source");
  }
  // Probe labels key the result map; a collision (including a branch probe
  // shadowing a node probe) would silently drop a waveform.
  {
    std::set<std::string> labels;
    for (const auto& p : probes) {
      if (!labels.insert(p.label).second)
        throw std::invalid_argument("runTransient: duplicate probe label '" + p.label + "'");
    }
    for (const auto& p : branch_probes) {
      if (!labels.insert(p.label).second)
        throw std::invalid_argument("runTransient: duplicate probe label '" + p.label + "'");
    }
  }

  const std::size_t n_unknowns = circuit.assignUnknowns();
  auto& elements = circuit.elements();
  for (auto& e : elements) e->begin(opt.dt);

  TransientResult result;
  std::vector<Vector> probe_data(probes.size());
  std::vector<Vector> branch_data(branch_probes.size());

  const bool reuse = opt.solver_mode == TransientSolverMode::kReuseFactorization;
  const bool sparse = opt.solver_mode == TransientSolverMode::kSparse;

  auto rejectStaticRhs = [](const Vector& b) {
    for (double v : b) {
      if (v != 0.0)
        throw std::logic_error(
            "runTransient: stampStatic wrote to the RHS; move that "
            "contribution into stampDynamic");
    }
  };

  // One-time assembly of the static (topology + dt) part of the MNA matrix
  // into the mode's target: a dense base matrix or a CSR base whose
  // finalize() fixes the symbolic pattern.
  StampSystem base;
  SparseMatrix base_sp;
  SparseMatrix work_sp;
  if (reuse) {
    base.a = Matrix(n_unknowns, n_unknowns);
    base.b.assign(n_unknowns, 0.0);
    for (auto& e : elements) e->stampStatic(base, opt.dt);
    rejectStaticRhs(base.b);
  } else if (sparse) {
    base_sp.reset(n_unknowns);
    base.sparse = &base_sp;
    base.b.assign(n_unknowns, 0.0);
    for (auto& e : elements) e->stampStatic(base, opt.dt);
    rejectStaticRhs(base.b);
    base_sp.finalize();
    work_sp = base_sp;
  }

  // All per-iteration state is allocated here, once; the Newton loop below
  // only reuses this storage (matrix copy-assign, vector assign/resize).
  Vector x(n_unknowns, 0.0);
  Vector x_new(n_unknowns, 0.0);
  StampSystem sys;
  sys.b.assign(n_unknowns, 0.0);
  if (reuse) {
    sys.a = base.a;
  } else if (sparse) {
    sys.sparse = &work_sp;
  } else {
    sys.a = Matrix(n_unknowns, n_unknowns);
  }
  // base_lu: factorization of the untouched static matrix, created lazily on
  // the first Newton iteration whose dynamic stamps leave the matrix clean
  // (lazily so circuits whose base matrix alone is singular — e.g. a node
  // held up only by a nonlinear device — still work). work_lu: refactored in
  // place on every iteration that dirties the matrix. The sparse mode keeps
  // the same pair as SparseLu factorizations.
  LuFactorization base_lu;
  LuFactorization work_lu;
  SparseLu base_slu;
  SparseLu work_slu;
  bool base_factored = false;
  // Once any iteration dirties the matrix, the working matrix must be
  // restored from the clean base before each dynamic stamping pass.
  bool matrix_was_dirtied = false;

  const auto n_settle = static_cast<long long>(std::ceil(opt.settle_time / opt.dt));
  const auto n_run = static_cast<long long>(std::ceil(opt.t_stop / opt.dt));

  auto record = [&](const Vector& sol) {
    for (std::size_t p = 0; p < probes.size(); ++p) {
      probe_data[p].push_back(nodeVoltage(sol, probes[p].n1) -
                              nodeVoltage(sol, probes[p].n2));
    }
    for (std::size_t p = 0; p < branch_probes.size(); ++p) {
      branch_data[p].push_back(sol[branch_probes[p].source->branchIndex()]);
    }
  };

  for (long long step = -n_settle; step <= n_run; ++step) {
    const double t_new = static_cast<double>(step) * opt.dt;
    for (auto& e : elements) e->beginStep(t_new, opt.dt);

    // Newton iteration: repeatedly solve the linearized MNA system.
    int it = 0;
    bool step_converged = false;
    for (; it < opt.max_newton_iterations; ++it) {
      if (reuse) {
        if (matrix_was_dirtied) sys.a = base.a;
        sys.b.assign(n_unknowns, 0.0);
        sys.matrix_dirty = false;
        for (auto& e : elements) e->stampDynamic(sys, x, t_new, opt.dt);
        if (sys.matrix_dirty) {
          matrix_was_dirtied = true;
          work_lu.factor(sys.a);
          ++result.lu_factorizations;
          work_lu.solve(sys.b, x_new);
        } else {
          if (!base_factored) {
            // sys.a is still the untouched base matrix here.
            base_lu.factor(sys.a);
            ++result.lu_factorizations;
            base_factored = true;
          }
          base_lu.solve(sys.b, x_new);
        }
      } else if (sparse) {
        if (matrix_was_dirtied) work_sp.setValuesFrom(base_sp);
        sys.b.assign(n_unknowns, 0.0);
        sys.matrix_dirty = false;
        for (auto& e : elements) e->stampDynamic(sys, x, t_new, opt.dt);
        if (work_sp.patternGrown()) {
          // A dynamic stamp hit a structurally-new entry: widen the working
          // pattern once and keep the cached base aligned so the in-place
          // value refresh above stays a straight copy. The base
          // factorization remains numerically valid (new entries are zero).
          work_sp.mergeOverflow();
          base_sp.adoptPatternOf(work_sp);
        }
        if (sys.matrix_dirty) {
          matrix_was_dirtied = true;
          work_slu.factor(work_sp);
          ++result.lu_factorizations;
          work_slu.solve(sys.b, x_new);
        } else {
          if (!base_factored) {
            // work_sp still holds the untouched base values here.
            base_slu.factor(work_sp);
            ++result.lu_factorizations;
            base_factored = true;
          }
          base_slu.solve(sys.b, x_new);
        }
      } else {
        std::fill_n(sys.a.data(), n_unknowns * n_unknowns, 0.0);
        sys.b.assign(n_unknowns, 0.0);
        for (auto& e : elements) e->stamp(sys, x, t_new, opt.dt);
        work_lu.factor(sys.a);
        ++result.lu_factorizations;
        work_lu.solve(sys.b, x_new);
      }

      double max_dx = 0.0;
      for (std::size_t k = 0; k < n_unknowns; ++k) {
        double dxk = x_new[k] - x[k];
        if (!std::isfinite(dxk))
          throw std::runtime_error("runTransient: Newton diverged (non-finite update)");
        if (opt.max_delta_v > 0.0) dxk = std::clamp(dxk, -opt.max_delta_v, opt.max_delta_v);
        x[k] += dxk;
        max_dx = std::max(max_dx, std::abs(dxk));
      }
      if (max_dx <= opt.v_tolerance) {
        step_converged = true;
        ++it;
        break;
      }
    }
    if (!step_converged) result.converged = false;
    result.max_newton_iterations = std::max(result.max_newton_iterations, it);
    result.total_newton_iterations += it;

    for (auto& e : elements) e->endStep(x, t_new, opt.dt);
    if (step >= 0) {
      record(x);
      ++result.steps;
    }
  }

  for (std::size_t p = 0; p < probes.size(); ++p) {
    result.probes.emplace(probes[p].label, Waveform(0.0, opt.dt, std::move(probe_data[p])));
  }
  for (std::size_t p = 0; p < branch_probes.size(); ++p) {
    result.probes.emplace(branch_probes[p].label,
                          Waveform(0.0, opt.dt, std::move(branch_data[p])));
  }
  return result;
}

}  // namespace fdtdmm
