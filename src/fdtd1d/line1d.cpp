#include "fdtd1d/line1d.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "math/newton.h"

namespace fdtdmm {

Fdtd1dLine::Fdtd1dLine(const Line1dConfig& cfg, PortModelPtr near_end,
                       PortModelPtr far_end)
    : cfg_(cfg), near_(std::move(near_end)), far_(std::move(far_end)) {
  if (cfg.zc <= 0.0 || cfg.td <= 0.0) throw std::invalid_argument("Fdtd1dLine: bad Zc/Td");
  if (cfg.cells < 2) throw std::invalid_argument("Fdtd1dLine: need >= 2 cells");
  if (cfg.courant <= 0.0 || cfg.courant > 1.0)
    throw std::invalid_argument("Fdtd1dLine: courant must be in (0, 1]");
  if (!near_ || !far_) throw std::invalid_argument("Fdtd1dLine: null termination");

  // Normalize the physical length to 1; only Zc and Td matter.
  const double length = 1.0;
  const double vel = length / cfg.td;
  l_per_ = cfg.zc / vel;
  c_per_ = 1.0 / (cfg.zc * vel);
  dz_ = length / static_cast<double>(cfg.cells);
  dt_ = cfg.courant * dz_ / vel;
}

double Fdtd1dLine::solveBoundary(PortModel& port, double v_old, double i_line,
                                 double& i_dev_prev, double t_new,
                                 Line1dResult& stats) {
  // Half-cell node equation (semi-implicit device current averaging, the
  // 1D analogue of Eq. 8):
  //   C' dz/2 (v_new - v_old)/dt + i_line + (i_dev(v_new) + i_dev_prev)/2 = 0
  const double chalf = 0.5 * c_per_ * dz_;
  const double g0 = chalf / dt_;
  double v = v_old;
  const double i_prev = i_dev_prev;
  NewtonOptions nopt;
  nopt.tolerance = cfg_.newton_tolerance;
  nopt.max_iterations = cfg_.max_newton_iterations;
  auto f = [&](double vx, double& df) {
    double didv = 0.0;
    const double idev = port.current(vx, t_new, didv);
    df = g0 + 0.5 * didv;
    return g0 * (vx - v_old) + i_line + 0.5 * (idev + i_prev);
  };
  const NewtonResult nr = newtonScalar(f, v, nopt);
  if (!nr.converged)
    throw std::runtime_error("Fdtd1dLine: termination Newton did not converge");
  stats.max_newton_iterations = std::max(stats.max_newton_iterations, nr.iterations);
  stats.total_newton_iterations += nr.iterations;
  double didv = 0.0;
  i_dev_prev = port.current(v, t_new, didv);
  port.commit(v, t_new);
  return v;
}

Line1dResult Fdtd1dLine::run(double t_stop) {
  if (t_stop <= 0.0) throw std::invalid_argument("Fdtd1dLine::run: t_stop must be > 0");
  const std::size_t n = cfg_.cells;
  std::vector<double> v(n + 1, 0.0);
  std::vector<double> i(n, 0.0);

  near_->prepare(dt_);
  far_->prepare(dt_);

  Line1dResult result;
  Vector rec_near, rec_far;
  const auto steps = static_cast<std::size_t>(std::ceil(t_stop / dt_));
  rec_near.reserve(steps + 1);
  rec_far.reserve(steps + 1);
  rec_near.push_back(v[0]);
  rec_far.push_back(v[n]);

  double i_dev_near = 0.0;
  double i_dev_far = 0.0;
  const double ci = dt_ / (l_per_ * dz_);
  const double cv = dt_ / (c_per_ * dz_);

  for (std::size_t step = 1; step <= steps; ++step) {
    const double t_new = static_cast<double>(step) * dt_;
    // Current update (leapfrog half step).
    for (std::size_t k = 0; k < n; ++k) i[k] -= ci * (v[k + 1] - v[k]);
    // Interior voltage update.
    for (std::size_t k = 1; k < n; ++k) v[k] -= cv * (i[k] - i[k - 1]);
    // Boundary nodes with behavioral terminations. Line current sign:
    // current i[0] flows from node 0 toward node 1 (out of the near node);
    // at the far node i[n-1] flows *into* node n.
    v[0] = solveBoundary(*near_, v[0], i[0], i_dev_near, t_new, result);
    v[n] = solveBoundary(*far_, v[n], -i[n - 1], i_dev_far, t_new, result);

    rec_near.push_back(v[0]);
    rec_far.push_back(v[n]);
    ++result.steps;
  }

  result.v_near = Waveform(0.0, dt_, std::move(rec_near));
  result.v_far = Waveform(0.0, dt_, std::move(rec_far));
  return result;
}

}  // namespace fdtdmm
