#pragma once
/// \file line1d.h
/// 1D FDTD solver for a lossless transmission line (telegrapher's
/// equations) terminated by arbitrary PortModel devices at both ends.
/// This is engine (iii) of the paper's Fig. 4 validation: "1D-FDTD for the
/// TL and RBF models of the devices".
///
/// Voltage nodes v[0..N] and current branches i[0..N-1] are staggered in
/// space and time (leapfrog). The boundary nodes carry half-cell
/// capacitance and the termination device, giving the scalar nonlinear
/// update solved by Newton-Raphson — the 1D analogue of the paper's
/// Eq. (8) + Eq. (13) coupling.

#include <cstddef>
#include <string>

#include "signal/port_model.h"
#include "signal/waveform.h"

namespace fdtdmm {

/// Line and discretization parameters.
struct Line1dConfig {
  double zc = 131.0;      ///< characteristic impedance [ohm]
  double td = 0.4e-9;     ///< one-way delay [s]
  std::size_t cells = 160;  ///< number of spatial cells
  double courant = 0.999;   ///< fraction of the CFL limit
  double newton_tolerance = 1e-9;  ///< matches the paper's threshold
  int max_newton_iterations = 50;
};

/// Result of a 1D FDTD run.
struct Line1dResult {
  Waveform v_near;  ///< voltage at node 0
  Waveform v_far;   ///< voltage at node N
  int max_newton_iterations = 0;
  long long total_newton_iterations = 0;
  std::size_t steps = 0;
};

/// 1D FDTD line with behavioral terminations.
class Fdtd1dLine {
 public:
  /// \throws std::invalid_argument on bad config or null terminations.
  Fdtd1dLine(const Line1dConfig& cfg, PortModelPtr near_end, PortModelPtr far_end);

  /// Time step implied by the CFL condition.
  double dt() const { return dt_; }

  /// Runs for t_stop seconds (from a zero initial state) and records the
  /// termination voltages. \throws std::runtime_error if a termination
  /// Newton solve fails to converge.
  Line1dResult run(double t_stop);

 private:
  double solveBoundary(PortModel& port, double v_old, double i_line,
                       double& i_dev_prev, double t_new, Line1dResult& stats);

  Line1dConfig cfg_;
  PortModelPtr near_;
  PortModelPtr far_;
  double dz_ = 0.0;       ///< nominal spatial step (normalized length 1)
  double dt_ = 0.0;
  double l_per_ = 0.0;    ///< inductance per unit length
  double c_per_ = 0.0;    ///< capacitance per unit length
};

}  // namespace fdtdmm
