#pragma once
/// \file submodel.h
/// Discrete-time parametric submodels (Section 2 of the paper).
///
/// A submodel maps the present port voltage sample v^m and the regressor
/// vectors x_v^{m-1}, x_i^{m-1} (the past r voltage and current samples,
/// Eq. 2) to the present current sample:
///     i^m = F(Theta; x_i^{m-1}, v^m, x_v^{m-1})        (Eq. 1)
/// Two concrete representations are provided:
///  * GaussianRbfSubmodel  — the Gaussian RBF expansion of Eqs. (3)-(4);
///  * LinearArxSubmodel    — the linear parametric submodel i_lin of Eq. (6).

#include <memory>
#include <vector>

#include "math/matrix.h"

namespace fdtdmm {

/// Abstract discrete-time submodel i^m = F(x_i, v^m, x_v).
class DiscreteSubmodel {
 public:
  virtual ~DiscreteSubmodel() = default;

  /// Dynamic order r (number of past samples in each regressor).
  virtual int order() const = 0;

  /// Native sampling time Ts of the model [s].
  virtual double ts() const = 0;

  /// Evaluates F. xv and xi must have length order(); xv[0] is the most
  /// recent past sample. If didv is non-null, stores dF/dv there.
  virtual double eval(double v, const Vector& xv, const Vector& xi,
                      double* didv = nullptr) const = 0;
};

/// Parameters of a Gaussian RBF submodel (Eqs. 3-4).
struct GaussianRbfParams {
  int order = 2;       ///< r
  double ts = 50e-12;  ///< native sampling time [s]
  double beta = 0.5;   ///< Gaussian width (in normalized regressor units)
  double i_scale = 1.0;  ///< current-regressor normalization [V/A]
  Vector theta;             ///< L expansion weights [A]
  Vector c0;                ///< L centers for the present voltage [V]
  std::vector<Vector> cv;   ///< L centers for x_v (each length r) [V]
  std::vector<Vector> ci;   ///< L centers for scaled x_i (each length r)
  /// Optional affine tail [bias, k_v, k_xv[0..r-1], k_xi[0..r-1]] added to
  /// the Gaussian expansion (empty = pure Gaussian model of Eq. 3); the
  /// current entries act on the *scaled* regressors s*xi. The tail
  /// provides the global port conductance so the model remains well-behaved
  /// outside the training manifold; without it the pure Gaussian expansion
  /// has a spurious zero equilibrium that traps the parallel (output-error)
  /// simulation. Documented in DESIGN.md.
  Vector affine;
};

/// Gaussian RBF expansion with an affine tail:
///   F = A(x) + sum_l theta_l * Psi_l(x) * exp(-(v - c0_l)^2 / (2 beta^2))
///   Psi_l = exp(-(||s xi - ci_l||^2 + ||xv - cv_l||^2) / (2 beta^2))
/// where s = i_scale balances the current regressors against the voltage
/// ones (the paper's single-beta Euclidean norm presumes such scaling) and
/// A(x) is the optional affine term.
class GaussianRbfSubmodel final : public DiscreteSubmodel {
 public:
  /// \throws std::invalid_argument on inconsistent parameter shapes,
  ///         non-positive beta/ts, or order < 1.
  explicit GaussianRbfSubmodel(GaussianRbfParams p);

  int order() const override { return p_.order; }
  double ts() const override { return p_.ts; }
  std::size_t centerCount() const { return p_.theta.size(); }
  const GaussianRbfParams& params() const { return p_; }

  double eval(double v, const Vector& xv, const Vector& xi,
              double* didv = nullptr) const override;

  /// Per-center basis values Psi_l * phi_l(v) (length L); the Gaussian part
  /// of the model output is theta . basis. Used by the linear-in-theta
  /// identification fit.
  Vector basis(double v, const Vector& xv, const Vector& xi) const;

  /// Affine regressor vector [1, v, xv..., xi...] of length 2*order + 2
  /// matching the layout of GaussianRbfParams::affine.
  Vector affineRegressor(double v, const Vector& xv, const Vector& xi) const;

 private:
  GaussianRbfParams p_;
};

/// Parameters of the linear ARX submodel (the i_lin term of Eq. 6):
///   i^m = sum_{k=1..r} a_k i^{m-k} + b_0 v^m + sum_{k=1..r} b_k v^{m-k}
struct LinearArxParams {
  int order = 2;
  double ts = 50e-12;
  Vector a;  ///< length r (feedback on past currents)
  Vector b;  ///< length r+1 (b[0] multiplies the present voltage)
};

/// Linear parametric submodel; same regressor conventions as the RBF one.
class LinearArxSubmodel final : public DiscreteSubmodel {
 public:
  /// \throws std::invalid_argument on inconsistent shapes.
  explicit LinearArxSubmodel(LinearArxParams p);

  int order() const override { return p_.order; }
  double ts() const override { return p_.ts; }
  const LinearArxParams& params() const { return p_; }

  double eval(double v, const Vector& xv, const Vector& xi,
              double* didv = nullptr) const override;

  /// Spectral radius of the feedback polynomial's companion matrix; the
  /// model is stable iff this is < 1 (the premise of the paper's Eq. 14).
  double poleRadius() const;

 private:
  LinearArxParams p_;
};

}  // namespace fdtdmm
