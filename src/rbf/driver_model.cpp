#include "rbf/driver_model.h"

#include <stdexcept>
#include <utility>

namespace fdtdmm {

namespace {

/// Looks up a weight template at relative time tr; past the template end
/// returns the steady value `steady`.
double templateValue(const Waveform& tmpl, double tr, double steady) {
  if (tmpl.empty()) return steady;
  if (tr >= tmpl.tEnd()) return steady;
  return tmpl.value(tr);
}

}  // namespace

WeightPair driverWeightsAt(const RbfDriverModel& model, const BitPattern& pattern,
                           double t) {
  const auto edges = pattern.edges();
  // Find the most recent edge at or before t (edges[0] is the initial level).
  std::size_t last = 0;
  for (std::size_t k = 1; k < edges.size(); ++k) {
    if (edges[k].time <= t) last = k;
  }
  const int level = edges[last].level;
  WeightPair steady{level != 0 ? 1.0 : 0.0, level != 0 ? 0.0 : 1.0};
  if (last == 0) return steady;  // before any transition

  const double tr = t - edges[last].time;
  if (level != 0) {
    // LOW -> HIGH edge.
    return {templateValue(model.weights.wu_up, tr, 1.0),
            templateValue(model.weights.wd_up, tr, 0.0)};
  }
  // HIGH -> LOW edge.
  return {templateValue(model.weights.wu_down, tr, 0.0),
          templateValue(model.weights.wd_down, tr, 1.0)};
}

RbfDriverPort::RbfDriverPort(std::shared_ptr<const RbfDriverModel> model,
                             BitPattern pattern, double v_initial)
    : model_(std::move(model)), pattern_(std::move(pattern)), v_initial_(v_initial) {
  if (!model_ || !model_->up || !model_->down)
    throw std::invalid_argument("RbfDriverPort: incomplete driver model");
  edges_ = pattern_.edges();
}

WeightPair RbfDriverPort::weightsAt(double t) const {
  // Allocation-free version of driverWeightsAt over the cached edge list
  // (this sits inside every Newton iteration of every solver step).
  std::size_t last = 0;
  for (std::size_t k = 1; k < edges_.size(); ++k) {
    if (edges_[k].time <= t) last = k;
  }
  const int level = edges_[last].level;
  if (last == 0) return {level != 0 ? 1.0 : 0.0, level != 0 ? 0.0 : 1.0};
  const double tr = t - edges_[last].time;
  if (level != 0) {
    return {templateValue(model_->weights.wu_up, tr, 1.0),
            templateValue(model_->weights.wd_up, tr, 0.0)};
  }
  return {templateValue(model_->weights.wu_down, tr, 0.0),
          templateValue(model_->weights.wd_down, tr, 1.0)};
}

void RbfDriverPort::prepare(double dt) {
  state_up_ = std::make_unique<ResampledSubmodelState>(model_->up.get(), dt);
  state_down_ = std::make_unique<ResampledSubmodelState>(model_->down.get(), dt);
  // Initialize both submodels at the initial port voltage. The port
  // typically starts at the steady level of the pattern's first bit.
  state_up_->reset(v_initial_);
  state_down_->reset(v_initial_);
}

double RbfDriverPort::current(double v, double t, double& didv) {
  if (!state_up_) throw std::logic_error("RbfDriverPort: prepare() not called");
  const WeightPair w = weightsAt(t);
  double du = 0.0, dd = 0.0;
  const double iu = state_up_->eval(v, du);
  const double id = state_down_->eval(v, dd);
  didv = w.wu * du + w.wd * dd;
  return w.wu * iu + w.wd * id;
}

void RbfDriverPort::commit(double v, double) {
  if (!state_up_) throw std::logic_error("RbfDriverPort: prepare() not called");
  state_up_->commit(v);
  state_down_->commit(v);
}

double RbfDriverPort::tau() const {
  if (!state_up_) throw std::logic_error("RbfDriverPort: prepare() not called");
  return state_up_->tau();
}

}  // namespace fdtdmm
