#pragma once
/// \file model_library.h
/// Directory-backed library of device macromodels. The paper: "It is also
/// conceivable to setup libraries of components that can be arbitrarily
/// selected and included by the user." A ModelLibrary maps component names
/// to serialized model files (driver or receiver) under one directory and
/// caches deserialized models so repeated lookups are cheap.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rbf/driver_model.h"
#include "rbf/receiver_model.h"

namespace fdtdmm {

/// A named collection of macromodels persisted under a directory.
/// File layout: `<dir>/<name>.driver.fdtdmm` / `<dir>/<name>.receiver.fdtdmm`.
class ModelLibrary {
 public:
  /// Opens (and creates if needed) a library directory.
  /// \throws std::runtime_error if the directory cannot be created.
  explicit ModelLibrary(std::string directory);

  /// Stores a driver model under `name` (overwrites).
  void putDriver(const std::string& name, const RbfDriverModel& model);
  /// Stores a receiver model under `name` (overwrites).
  void putReceiver(const std::string& name, const RbfReceiverModel& model);

  /// Loads (and caches) a driver model. \throws std::runtime_error if the
  /// component does not exist or fails to parse.
  std::shared_ptr<const RbfDriverModel> driver(const std::string& name);
  /// Loads (and caches) a receiver model.
  std::shared_ptr<const RbfReceiverModel> receiver(const std::string& name);

  /// True if the named driver/receiver exists on disk.
  bool hasDriver(const std::string& name) const;
  bool hasReceiver(const std::string& name) const;

  /// Names of all components present (union of drivers and receivers).
  std::vector<std::string> list() const;

  const std::string& directory() const { return dir_; }

 private:
  std::string driverPath(const std::string& name) const;
  std::string receiverPath(const std::string& name) const;
  static void validateName(const std::string& name);

  std::string dir_;
  std::map<std::string, std::shared_ptr<const RbfDriverModel>> driver_cache_;
  std::map<std::string, std::shared_ptr<const RbfReceiverModel>> receiver_cache_;
};

}  // namespace fdtdmm
