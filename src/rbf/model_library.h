#pragma once
/// \file model_library.h
/// Directory-backed library of device macromodels. The paper: "It is also
/// conceivable to setup libraries of components that can be arbitrarily
/// selected and included by the user." A ModelLibrary maps component names
/// to serialized model files (driver or receiver) under one directory and
/// caches deserialized models so repeated lookups are cheap.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rbf/driver_model.h"
#include "rbf/receiver_model.h"

namespace fdtdmm {

/// A named collection of macromodels persisted under a directory.
/// File layout: `<dir>/<name>.driver.fdtdmm` / `<dir>/<name>.receiver.fdtdmm`.
///
/// The deserialized-model cache is mutex-guarded, so one ModelLibrary can
/// be shared by concurrent sweep workers: simultaneous first lookups of a
/// component deserialize it once, and put* vs lookup races are safe.
/// (Filesystem contents are still assumed stable while readers run.)
class ModelLibrary {
 public:
  /// Opens (and creates if needed) a library directory.
  /// \throws std::runtime_error if the directory cannot be created.
  explicit ModelLibrary(std::string directory);

  /// Stores a driver model under `name` (overwrites).
  void putDriver(const std::string& name, const RbfDriverModel& model);
  /// Stores a receiver model under `name` (overwrites).
  void putReceiver(const std::string& name, const RbfReceiverModel& model);

  /// Loads (and caches) a driver model. \throws std::runtime_error if the
  /// component does not exist or fails to parse.
  std::shared_ptr<const RbfDriverModel> driver(const std::string& name);
  /// Loads (and caches) a receiver model.
  std::shared_ptr<const RbfReceiverModel> receiver(const std::string& name);

  /// True if the named driver/receiver exists on disk.
  bool hasDriver(const std::string& name) const;
  bool hasReceiver(const std::string& name) const;

  /// Names of all components present (union of drivers and receivers).
  std::vector<std::string> list() const;

  /// Deserializes every model on disk into the cache, serially. Call once
  /// before handing the library to parallel workers so no worker pays (or
  /// contends on) first-lookup deserialization.
  void preload();

  const std::string& directory() const { return dir_; }

 private:
  std::string driverPath(const std::string& name) const;
  std::string receiverPath(const std::string& name) const;
  static void validateName(const std::string& name);

  std::string dir_;
  mutable std::mutex mu_;  ///< guards both caches
  std::map<std::string, std::shared_ptr<const RbfDriverModel>> driver_cache_;
  std::map<std::string, std::shared_ptr<const RbfReceiverModel>> receiver_cache_;
};

}  // namespace fdtdmm
