#pragma once
/// \file resampling.h
/// The paper's resampling strategy (Section 3, Eq. 13, and Section 3.1).
///
/// A discrete-time model identified at sampling time Ts is converted to
/// continuous time with a first-order forward difference and resampled at
/// the FDTD step dt. With tau = dt/Ts, the regressor states advance as
///     x^{n+1} = Q x^n + tau e_1 u^n,     Q = (1-tau) I + tau S
/// where S is the down-shift matrix. tau = 1 degenerates to the original
/// shift register; tau > 1 is extrapolation and is rejected (Eq. 17).

#include <complex>
#include <memory>

#include "math/matrix.h"
#include "rbf/submodel.h"

namespace fdtdmm {

/// Eigenvalue map of the full conversion chain applied to the linear test
/// problem (Eqs. 14-16): lambda (discrete, |lambda|<1) -> eta = (lambda-1)/Ts
/// (continuous) -> lambda_tilde = 1 + tau (lambda - 1) (resampled).
std::complex<double> resampleEigenvalue(std::complex<double> lambda, double tau);

/// Continuous-time eigenvalue of the intermediate conversion (Eq. 15).
std::complex<double> continuousEigenvalue(std::complex<double> lambda, double ts);

/// Builds the Q update matrix of Eq. (13) for a model of order r.
/// \throws std::invalid_argument if r < 1 or tau not in (0, 1].
Matrix buildQMatrix(int r, double tau);

/// Applies the resampling map to a full discrete state matrix:
/// A_tilde = I + tau (A - I). Stability of A (spectral radius < 1) implies
/// stability of A_tilde for tau <= 1 (Section 3.1).
Matrix resampleStateMatrix(const Matrix& a, double tau);

/// Resampled regressor state of one submodel (Eq. 13): holds x_v and x_i
/// and advances them at the host time step. Also owns the "pending" states
/// used for evaluating the next step's current.
class ResampledSubmodelState {
 public:
  /// Binds to a submodel (non-owning) with host step dt.
  /// \throws std::invalid_argument if dt <= 0 or tau = dt/Ts > 1 (Eq. 17).
  ResampledSubmodelState(const DiscreteSubmodel* model, double dt);

  /// Fills the regressors with the steady state consistent with constant
  /// port voltage v0: x_v = v0 * 1, x_i = i0 * 1 with i0 the fixed point of
  /// i = F(i 1, v0, v0 1) (found by damped fixed-point iteration).
  void reset(double v0);

  /// Evaluates the current i^{n+1} = F(x_i^{n+1}, v, x_v^{n+1}) for a trial
  /// end-of-step voltage v. Pure (does not mutate state).
  double eval(double v, double& didv) const;

  /// Commits the accepted end-of-step voltage: computes the current and
  /// advances both regressors per Eq. (13).
  void commit(double v);

  double tau() const { return tau_; }
  const Vector& xv() const { return xv_; }
  const Vector& xi() const { return xi_; }

 private:
  void advance(Vector& x, double input) const;

  const DiscreteSubmodel* model_;
  double tau_;
  Vector xv_, xi_;
};

}  // namespace fdtdmm
