#include "rbf/model_library.h"

#include <filesystem>
#include <set>
#include <stdexcept>

#include "rbf/model_io.h"

namespace fdtdmm {

namespace fs = std::filesystem;

namespace {
constexpr const char* kDriverSuffix = ".driver.fdtdmm";
constexpr const char* kReceiverSuffix = ".receiver.fdtdmm";
}  // namespace

ModelLibrary::ModelLibrary(std::string directory) : dir_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw std::runtime_error("ModelLibrary: cannot create directory " + dir_);
}

void ModelLibrary::validateName(const std::string& name) {
  if (name.empty()) throw std::invalid_argument("ModelLibrary: empty component name");
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok)
      throw std::invalid_argument(
          "ModelLibrary: component names must be [A-Za-z0-9_-], got '" + name + "'");
  }
}

std::string ModelLibrary::driverPath(const std::string& name) const {
  return dir_ + "/" + name + kDriverSuffix;
}

std::string ModelLibrary::receiverPath(const std::string& name) const {
  return dir_ + "/" + name + kReceiverSuffix;
}

void ModelLibrary::putDriver(const std::string& name, const RbfDriverModel& model) {
  validateName(name);
  // The file write happens under the lock: a concurrent lookup of the same
  // name must never deserialize a partially-written file.
  std::lock_guard<std::mutex> lock(mu_);
  saveDriverModel(model, driverPath(name));
  driver_cache_.erase(name);
}

void ModelLibrary::putReceiver(const std::string& name, const RbfReceiverModel& model) {
  validateName(name);
  std::lock_guard<std::mutex> lock(mu_);
  saveReceiverModel(model, receiverPath(name));
  receiver_cache_.erase(name);
}

std::shared_ptr<const RbfDriverModel> ModelLibrary::driver(const std::string& name) {
  validateName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = driver_cache_.find(name);
  if (it != driver_cache_.end()) return it->second;
  if (!hasDriver(name))
    throw std::runtime_error("ModelLibrary: no driver component '" + name + "'");
  auto model = std::make_shared<const RbfDriverModel>(loadDriverModel(driverPath(name)));
  driver_cache_.emplace(name, model);
  return model;
}

std::shared_ptr<const RbfReceiverModel> ModelLibrary::receiver(const std::string& name) {
  validateName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = receiver_cache_.find(name);
  if (it != receiver_cache_.end()) return it->second;
  if (!hasReceiver(name))
    throw std::runtime_error("ModelLibrary: no receiver component '" + name + "'");
  auto model =
      std::make_shared<const RbfReceiverModel>(loadReceiverModel(receiverPath(name)));
  receiver_cache_.emplace(name, model);
  return model;
}

void ModelLibrary::preload() {
  for (const std::string& name : list()) {
    if (hasDriver(name)) driver(name);
    if (hasReceiver(name)) receiver(name);
  }
}

bool ModelLibrary::hasDriver(const std::string& name) const {
  return fs::exists(driverPath(name));
}

bool ModelLibrary::hasReceiver(const std::string& name) const {
  return fs::exists(receiverPath(name));
}

std::vector<std::string> ModelLibrary::list() const {
  std::set<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string fname = entry.path().filename().string();
    for (const char* suffix : {kDriverSuffix, kReceiverSuffix}) {
      const std::string s(suffix);
      if (fname.size() > s.size() &&
          fname.compare(fname.size() - s.size(), s.size(), s) == 0) {
        names.insert(fname.substr(0, fname.size() - s.size()));
      }
    }
  }
  return {names.begin(), names.end()};
}

}  // namespace fdtdmm
