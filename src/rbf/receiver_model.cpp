#include "rbf/receiver_model.h"

#include <stdexcept>
#include <utility>

namespace fdtdmm {

RbfReceiverPort::RbfReceiverPort(std::shared_ptr<const RbfReceiverModel> model,
                                 double v_initial)
    : model_(std::move(model)), v_initial_(v_initial) {
  if (!model_ || !model_->lin || !model_->up || !model_->down)
    throw std::invalid_argument("RbfReceiverPort: incomplete receiver model");
}

void RbfReceiverPort::prepare(double dt) {
  state_lin_ = std::make_unique<ResampledSubmodelState>(model_->lin.get(), dt);
  state_up_ = std::make_unique<ResampledSubmodelState>(model_->up.get(), dt);
  state_down_ = std::make_unique<ResampledSubmodelState>(model_->down.get(), dt);
  state_lin_->reset(v_initial_);
  state_up_->reset(v_initial_);
  state_down_->reset(v_initial_);
}

double RbfReceiverPort::current(double v, double, double& didv) {
  if (!state_lin_) throw std::logic_error("RbfReceiverPort: prepare() not called");
  double dl = 0.0, du = 0.0, dd = 0.0;
  const double il = state_lin_->eval(v, dl);
  const double iu = state_up_->eval(v, du);
  const double id = state_down_->eval(v, dd);
  didv = dl + du + dd;
  return il + iu + id;
}

void RbfReceiverPort::commit(double v, double) {
  if (!state_lin_) throw std::logic_error("RbfReceiverPort: prepare() not called");
  state_lin_->commit(v);
  state_up_->commit(v);
  state_down_->commit(v);
}

double RbfReceiverPort::tau() const {
  if (!state_lin_) throw std::logic_error("RbfReceiverPort: prepare() not called");
  return state_lin_->tau();
}

}  // namespace fdtdmm
