#include "rbf/submodel.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "math/spectral.h"

namespace fdtdmm {

GaussianRbfSubmodel::GaussianRbfSubmodel(GaussianRbfParams p) : p_(std::move(p)) {
  if (p_.order < 1) throw std::invalid_argument("GaussianRbfSubmodel: order must be >= 1");
  if (p_.ts <= 0.0) throw std::invalid_argument("GaussianRbfSubmodel: ts must be > 0");
  if (p_.beta <= 0.0) throw std::invalid_argument("GaussianRbfSubmodel: beta must be > 0");
  if (p_.i_scale < 0.0)
    throw std::invalid_argument("GaussianRbfSubmodel: i_scale must be >= 0 (0 disables current feedback)");
  const std::size_t l = p_.theta.size();
  if (p_.c0.size() != l || p_.cv.size() != l || p_.ci.size() != l)
    throw std::invalid_argument("GaussianRbfSubmodel: center arrays must match theta size");
  for (std::size_t k = 0; k < l; ++k) {
    if (p_.cv[k].size() != static_cast<std::size_t>(p_.order) ||
        p_.ci[k].size() != static_cast<std::size_t>(p_.order))
      throw std::invalid_argument("GaussianRbfSubmodel: center dimension != order");
  }
  if (!p_.affine.empty() &&
      p_.affine.size() != 2 * static_cast<std::size_t>(p_.order) + 2)
    throw std::invalid_argument("GaussianRbfSubmodel: affine tail must have length 2r+2");
}

double GaussianRbfSubmodel::eval(double v, const Vector& xv, const Vector& xi,
                                 double* didv) const {
  if (xv.size() != static_cast<std::size_t>(p_.order) ||
      xi.size() != static_cast<std::size_t>(p_.order))
    throw std::invalid_argument("GaussianRbfSubmodel::eval: regressor size != order");
  const double inv2b2 = 1.0 / (2.0 * p_.beta * p_.beta);
  double acc = 0.0;
  double dacc = 0.0;
  if (!p_.affine.empty()) {
    // The affine tail acts on the same scaled regressors as the Gaussian
    // metric (current terms scaled by i_scale) for numerical conditioning.
    acc += p_.affine[0] + p_.affine[1] * v;
    dacc += p_.affine[1];
    for (int k = 0; k < p_.order; ++k) {
      acc += p_.affine[2 + static_cast<std::size_t>(k)] * xv[static_cast<std::size_t>(k)];
      acc += p_.affine[2 + static_cast<std::size_t>(p_.order + k)] * p_.i_scale *
             xi[static_cast<std::size_t>(k)];
    }
  }
  for (std::size_t l = 0; l < p_.theta.size(); ++l) {
    double d2 = 0.0;
    for (int k = 0; k < p_.order; ++k) {
      const double dv = xv[static_cast<std::size_t>(k)] - p_.cv[l][static_cast<std::size_t>(k)];
      const double di = p_.i_scale * xi[static_cast<std::size_t>(k)] - p_.ci[l][static_cast<std::size_t>(k)];
      d2 += dv * dv + di * di;
    }
    const double dv0 = v - p_.c0[l];
    const double g = std::exp(-(d2 + dv0 * dv0) * inv2b2);
    const double term = p_.theta[l] * g;
    acc += term;
    dacc += term * (-dv0 * 2.0 * inv2b2);
  }
  if (didv != nullptr) *didv = dacc;
  return acc;
}

Vector GaussianRbfSubmodel::basis(double v, const Vector& xv, const Vector& xi) const {
  if (xv.size() != static_cast<std::size_t>(p_.order) ||
      xi.size() != static_cast<std::size_t>(p_.order))
    throw std::invalid_argument("GaussianRbfSubmodel::basis: regressor size != order");
  const double inv2b2 = 1.0 / (2.0 * p_.beta * p_.beta);
  Vector out(p_.theta.size());
  for (std::size_t l = 0; l < p_.theta.size(); ++l) {
    double d2 = 0.0;
    for (int k = 0; k < p_.order; ++k) {
      const double dv = xv[static_cast<std::size_t>(k)] - p_.cv[l][static_cast<std::size_t>(k)];
      const double di = p_.i_scale * xi[static_cast<std::size_t>(k)] - p_.ci[l][static_cast<std::size_t>(k)];
      d2 += dv * dv + di * di;
    }
    const double dv0 = v - p_.c0[l];
    out[l] = std::exp(-(d2 + dv0 * dv0) * inv2b2);
  }
  return out;
}

Vector GaussianRbfSubmodel::affineRegressor(double v, const Vector& xv,
                                            const Vector& xi) const {
  if (xv.size() != static_cast<std::size_t>(p_.order) ||
      xi.size() != static_cast<std::size_t>(p_.order))
    throw std::invalid_argument("GaussianRbfSubmodel::affineRegressor: size mismatch");
  Vector a;
  a.reserve(2 * static_cast<std::size_t>(p_.order) + 2);
  a.push_back(1.0);
  a.push_back(v);
  for (double x : xv) a.push_back(x);
  for (double x : xi) a.push_back(p_.i_scale * x);
  return a;
}

LinearArxSubmodel::LinearArxSubmodel(LinearArxParams p) : p_(std::move(p)) {
  if (p_.order < 1) throw std::invalid_argument("LinearArxSubmodel: order must be >= 1");
  if (p_.ts <= 0.0) throw std::invalid_argument("LinearArxSubmodel: ts must be > 0");
  if (p_.a.size() != static_cast<std::size_t>(p_.order))
    throw std::invalid_argument("LinearArxSubmodel: a must have length order");
  if (p_.b.size() != static_cast<std::size_t>(p_.order) + 1)
    throw std::invalid_argument("LinearArxSubmodel: b must have length order+1");
}

double LinearArxSubmodel::eval(double v, const Vector& xv, const Vector& xi,
                               double* didv) const {
  if (xv.size() != static_cast<std::size_t>(p_.order) ||
      xi.size() != static_cast<std::size_t>(p_.order))
    throw std::invalid_argument("LinearArxSubmodel::eval: regressor size != order");
  double acc = p_.b[0] * v;
  for (int k = 0; k < p_.order; ++k) {
    acc += p_.a[static_cast<std::size_t>(k)] * xi[static_cast<std::size_t>(k)];
    acc += p_.b[static_cast<std::size_t>(k) + 1] * xv[static_cast<std::size_t>(k)];
  }
  if (didv != nullptr) *didv = p_.b[0];
  return acc;
}

double LinearArxSubmodel::poleRadius() const {
  return spectralRadius(companionMatrix(p_.a));
}

}  // namespace fdtdmm
