#pragma once
/// \file model_io.h
/// Plain-text (de)serialization of driver and receiver macromodels. The
/// paper notes that "the same computational code can be used for very
/// different devices simply feeding it with the proper model parameters"
/// and envisions component libraries; this module is that mechanism.
///
/// Format: a line-oriented text file with a versioned magic header; all
/// floating-point values are written with max_digits10 so round-trips are
/// bit-faithful.

#include <iosfwd>
#include <string>

#include "rbf/driver_model.h"
#include "rbf/receiver_model.h"

namespace fdtdmm {

/// Writes a driver model. \throws std::runtime_error on I/O failure.
void saveDriverModel(const RbfDriverModel& model, const std::string& path);
void writeDriverModel(const RbfDriverModel& model, std::ostream& out);

/// Reads a driver model. \throws std::runtime_error on I/O or format error.
RbfDriverModel loadDriverModel(const std::string& path);
RbfDriverModel readDriverModel(std::istream& in);

/// Writes a receiver model. \throws std::runtime_error on I/O failure.
void saveReceiverModel(const RbfReceiverModel& model, const std::string& path);
void writeReceiverModel(const RbfReceiverModel& model, std::ostream& out);

/// Reads a receiver model. \throws std::runtime_error on I/O or format error.
RbfReceiverModel loadReceiverModel(const std::string& path);
RbfReceiverModel readReceiverModel(std::istream& in);

}  // namespace fdtdmm
