#pragma once
/// \file driver_model.h
/// RBF macromodel of a digital output port (driver), Eq. (5) of the paper:
///   i^m = w_u^m i_u^m + w_d^m i_d^m
/// Two time-invariant Gaussian RBF submodels describe the port at fixed
/// logic HIGH / LOW state; time-varying weights w_u, w_d (extracted once
/// during identification) blend them across logic transitions.

#include <memory>

#include "rbf/resampling.h"
#include "rbf/submodel.h"
#include "signal/bit_pattern.h"
#include "signal/port_model.h"
#include "signal/waveform.h"

namespace fdtdmm {

/// Switching weight templates, sampled at the model's Ts, with time
/// measured from the start of a logic edge. Outside a template the weights
/// hold their steady values ((w_u, w_d) = (1,0) for HIGH, (0,1) for LOW).
struct SwitchingWeights {
  Waveform wu_up;    ///< w_u during a LOW->HIGH transition
  Waveform wd_up;    ///< w_d during a LOW->HIGH transition
  Waveform wu_down;  ///< w_u during a HIGH->LOW transition
  Waveform wd_down;  ///< w_d during a HIGH->LOW transition
};

/// Complete driver macromodel: the device's "set of parameters" that the
/// paper proposes storing in component libraries.
struct RbfDriverModel {
  std::shared_ptr<const GaussianRbfSubmodel> up;    ///< i_u (HIGH-state submodel)
  std::shared_ptr<const GaussianRbfSubmodel> down;  ///< i_d (LOW-state submodel)
  SwitchingWeights weights;
  double ts = 50e-12;  ///< native sampling time [s]
  double vdd = 1.8;    ///< supply voltage (steady HIGH port level hint)
};

/// Weight pair at a given time for a given stimulus pattern.
struct WeightPair {
  double wu = 0.0;
  double wd = 1.0;
};

/// Evaluates the switching weights at absolute time t for a bit pattern.
/// Exposed for tests and for plotting weight trajectories.
WeightPair driverWeightsAt(const RbfDriverModel& model, const BitPattern& pattern,
                           double t);

/// Runtime adapter: an RbfDriverModel stimulated by a bit pattern, exposed
/// through the PortModel interface so it can be placed in an FDTD mesh cell
/// or an MNA netlist. Internally keeps two resampled regressor states (one
/// per submodel), advanced per Eq. (13).
class RbfDriverPort final : public PortModel {
 public:
  /// \throws std::invalid_argument if model is null or incomplete.
  RbfDriverPort(std::shared_ptr<const RbfDriverModel> model, BitPattern pattern,
                double v_initial = 0.0);

  void prepare(double dt) override;
  double current(double v, double t, double& didv) override;
  void commit(double v, double t) override;
  std::string name() const override { return "rbf-driver"; }

  /// Resampling factor tau = dt/Ts after prepare().
  double tau() const;

 private:
  WeightPair weightsAt(double t) const;

  std::shared_ptr<const RbfDriverModel> model_;
  BitPattern pattern_;
  std::vector<BitPattern::Edge> edges_;  ///< cached pattern transitions
  double v_initial_;
  std::unique_ptr<ResampledSubmodelState> state_up_;
  std::unique_ptr<ResampledSubmodelState> state_down_;
};

}  // namespace fdtdmm
