#include "rbf/identification.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "math/kmeans.h"
#include "math/linear_solve.h"
#include "math/stats.h"

namespace fdtdmm {

namespace {

void checkRecord(const Waveform& v, const Waveform& i, int order, const char* who) {
  if (v.size() != i.size())
    throw std::invalid_argument(std::string(who) + ": v/i length mismatch");
  if (std::abs(v.dt() - i.dt()) > 1e-18)
    throw std::invalid_argument(std::string(who) + ": v/i sampling mismatch");
  if (v.size() < static_cast<std::size_t>(order) + 8)
    throw std::invalid_argument(std::string(who) + ": record too short for order");
}

/// Builds the (2r+1)-dimensional regressor point for sample m:
/// [v_m, v_{m-1}..v_{m-r}, s*i_{m-1}..s*i_{m-r}].
Vector regressorPoint(const Waveform& v, const Waveform& i, std::size_t m,
                      int order, double i_scale) {
  Vector p;
  p.reserve(2 * static_cast<std::size_t>(order) + 1);
  p.push_back(v[m]);
  for (int k = 1; k <= order; ++k) p.push_back(v[m - static_cast<std::size_t>(k)]);
  for (int k = 1; k <= order; ++k)
    p.push_back(i_scale * i[m - static_cast<std::size_t>(k)]);
  return p;
}

}  // namespace

std::shared_ptr<GaussianRbfSubmodel> fitGaussianSubmodel(
    const Waveform& v, const Waveform& i, const SubmodelFitOptions& opt,
    FitReport* report) {
  if (opt.order < 1) throw std::invalid_argument("fitGaussianSubmodel: order must be >= 1");
  if (opt.centers < 2) throw std::invalid_argument("fitGaussianSubmodel: need >= 2 centers");
  checkRecord(v, i, opt.order, "fitGaussianSubmodel");

  const auto r = static_cast<std::size_t>(opt.order);
  const std::size_t n = v.size();
  const std::size_t n_rows = n - r;

  // Normalize the current regressors to the voltage span so the paper's
  // single-beta Euclidean metric treats both equally; i_scale = 0 removes
  // current feedback entirely (voltage-only alternative form).
  const MinMax vr = minMax(v.samples());
  const MinMax ir = minMax(i.samples());
  const double v_span = std::max(vr.max - vr.min, 1e-9);
  const double i_span = std::max(ir.max - ir.min, 1e-15);
  const double i_scale = opt.use_current_regressors ? v_span / i_span : 0.0;

  // Collect regressor points and targets.
  std::vector<Vector> points;
  points.reserve(n_rows);
  Vector targets;
  targets.reserve(n_rows);
  for (std::size_t m = r; m < n; ++m) {
    points.push_back(regressorPoint(v, i, m, opt.order, i_scale));
    targets.push_back(i[m]);
  }

  // Center placement by k-means in the joint regressor space.
  const std::size_t l = std::min(opt.centers, points.size());
  KMeansOptions ko;
  ko.seed = opt.seed;
  const KMeansResult km = kMeans(points, l, ko);

  // Width: beta proportional to the mean nearest-neighbor center spacing.
  double nn_acc = 0.0;
  for (std::size_t a = 0; a < l; ++a) {
    double best = std::numeric_limits<double>::max();
    for (std::size_t b = 0; b < l; ++b) {
      if (a == b) continue;
      double d2 = 0.0;
      for (std::size_t kk = 0; kk < km.centers[a].size(); ++kk) {
        const double d = km.centers[a][kk] - km.centers[b][kk];
        d2 += d * d;
      }
      best = std::min(best, d2);
    }
    nn_acc += std::sqrt(best);
  }
  double beta = opt.beta_scale * std::max(nn_acc / static_cast<double>(l), 1e-6);
  // Widen so neighbouring centers overlap well: narrow kernels interpolate
  // the training points but ripple in between, and a resampled run at
  // tau << 1 crawls exactly through those gaps.
  beta *= 2.4;

  // Assemble the model skeleton with zero weights for basis evaluation.
  GaussianRbfParams p;
  p.order = opt.order;
  p.ts = v.dt();
  p.beta = beta;
  p.i_scale = i_scale;
  p.theta.assign(l, 0.0);
  p.c0.resize(l);
  p.cv.assign(l, Vector(r, 0.0));
  p.ci.assign(l, Vector(r, 0.0));
  for (std::size_t c = 0; c < l; ++c) {
    const Vector& ctr = km.centers[c];
    p.c0[c] = ctr[0];
    for (std::size_t k = 0; k < r; ++k) {
      p.cv[c][k] = ctr[1 + k];
      p.ci[c][k] = ctr[1 + r + k];  // already in scaled units
    }
  }
  const std::size_t n_aff = 2 * r + 2;
  p.affine.assign(n_aff, 0.0);
  GaussianRbfSubmodel skeleton(p);

  // Extract the static I-V manifold from held segments of the excitation:
  // samples whose recent voltage history is flat are (approximately) at
  // equilibrium. These anchor the model's DC behaviour, which a plain
  // equation-error fit leaves poorly constrained (its current-feedback
  // loop can acquire near-unity gain and drift in parallel form).
  struct Bin {
    double v_sum = 0.0, i_sum = 0.0;
    std::size_t count = 0;
  };
  const std::size_t n_bins = 25;
  std::vector<Bin> bins(n_bins);
  const double held_eps = 0.02 * v_span;
  for (std::size_t m = r + 4; m < n; ++m) {
    bool held = true;
    for (std::size_t k = 1; k <= r + 4; ++k) {
      if (std::abs(v[m - k] - v[m]) > held_eps) {
        held = false;
        break;
      }
    }
    if (!held) continue;
    auto b = static_cast<std::size_t>((v[m] - vr.min) / v_span * (n_bins - 1) + 0.5);
    b = std::min(b, n_bins - 1);
    bins[b].v_sum += v[m];
    bins[b].i_sum += i[m];
    ++bins[b].count;
  }
  std::vector<std::pair<double, double>> anchors;  // (v, i) equilibria
  for (const Bin& b : bins) {
    if (b.count >= 3) {
      anchors.emplace_back(b.v_sum / static_cast<double>(b.count),
                           b.i_sum / static_cast<double>(b.count));
    }
  }

  // Design matrix: L Gaussian columns followed by the affine tail, with
  // the regular equation-error rows first and the weighted DC-anchor rows
  // appended. Both groups use scaled regressors, so a single ridge is well
  // conditioned.
  const double anchor_weight =
      std::sqrt(static_cast<double>(n_rows) /
                std::max<std::size_t>(anchors.size(), 1)) * 4.0;
  const std::size_t total_rows = n_rows + anchors.size();
  Matrix design(total_rows, l + n_aff);
  Vector rhs(total_rows);
  Vector xv(r), xi(r);
  for (std::size_t row = 0; row < n_rows; ++row) {
    const std::size_t m = row + r;
    for (std::size_t k = 0; k < r; ++k) {
      xv[k] = v[m - 1 - k];
      xi[k] = i[m - 1 - k];
    }
    const Vector base = skeleton.basis(v[m], xv, xi);
    for (std::size_t c = 0; c < l; ++c) design(row, c) = base[c];
    const Vector aff = skeleton.affineRegressor(v[m], xv, xi);
    for (std::size_t c = 0; c < n_aff; ++c) design(row, l + c) = aff[c];
    rhs[row] = targets[row];
  }
  for (std::size_t a = 0; a < anchors.size(); ++a) {
    const std::size_t row = n_rows + a;
    const auto [va, ia] = anchors[a];
    xv.assign(r, va);
    xi.assign(r, ia);
    const Vector base = skeleton.basis(va, xv, xi);
    for (std::size_t c = 0; c < l; ++c) design(row, c) = anchor_weight * base[c];
    const Vector aff = skeleton.affineRegressor(va, xv, xi);
    for (std::size_t c = 0; c < n_aff; ++c)
      design(row, l + c) = anchor_weight * aff[c];
    rhs[row] = anchor_weight * ia;
  }

  // The equation-error fit is linear, but the model runs in parallel
  // (output-error) form at simulation time, usually resampled to a host
  // step far below Ts. A fit that is excellent in equation error can still
  // misbehave there (feedback drift, inter-center ripple), so validate each
  // candidate two ways — a parallel run at Ts and a resampled run at
  // tau = 1/8 crawling between the training points — and escalate the
  // ridge until both are tame. Keep the best candidate.
  const Waveform v_fine = v.resampled(v.dt() / 8.0);
  const double i_span_norm = std::max(i_span, 1e-15);
  if (report != nullptr) {
    *report = FitReport{};
    report->beta = beta;
    report->i_scale = i_scale;
    report->anchors = anchors.size();
  }
  std::shared_ptr<GaussianRbfSubmodel> best;
  double best_err = std::numeric_limits<double>::max();
  double ridge = std::max(opt.ridge, 1e-12);
  for (int attempt = 0; attempt < 8; ++attempt, ridge *= 30.0) {
    Vector coeffs;
    try {
      coeffs = solveLeastSquares(design, rhs, ridge);
    } catch (const std::runtime_error&) {
      continue;  // rank issues at tiny ridge: escalate
    }
    GaussianRbfParams cand = p;
    cand.theta.assign(coeffs.begin(), coeffs.begin() + static_cast<std::ptrdiff_t>(l));
    cand.affine.assign(coeffs.begin() + static_cast<std::ptrdiff_t>(l), coeffs.end());
    auto model = std::make_shared<GaussianRbfSubmodel>(std::move(cand));
    double err_ts = std::numeric_limits<double>::max();
    double err_rs = std::numeric_limits<double>::max();
    try {
      const Waveform i_ts = simulateSubmodel(*model, v, v[0]);
      const Waveform i_rs = simulateSubmodel(*model, v_fine, v_fine[0]);
      bool finite = true;
      for (double x : i_ts.samples()) finite = finite && std::isfinite(x);
      for (double x : i_rs.samples()) finite = finite && std::isfinite(x);
      if (finite) {
        err_ts = rmsError(i_ts.samples(), i.samples()) / i_span_norm;
        // Compare the fine run against the coarse targets at coincident
        // sample instants (every 8th fine sample).
        double acc = 0.0;
        std::size_t cnt = 0;
        for (std::size_t m = 0; m < i.size() && 8 * m < i_rs.size(); ++m, ++cnt) {
          const double d = i_rs[8 * m] - i[m];
          acc += d * d;
        }
        if (cnt > 0) err_rs = std::sqrt(acc / static_cast<double>(cnt)) / i_span_norm;
      }
    } catch (const std::exception&) {
      // keep err = max
    }
    const double err = std::max(err_ts, err_rs);
    if (report != nullptr) {
      double tmax = 0.0;
      for (double t : model->params().theta) tmax = std::max(tmax, std::abs(t));
      report->attempts.push_back({ridge, err_ts, err_rs, tmax});
    }
    if (err < best_err) {
      best_err = err;
      best = std::move(model);
    }
    if (best_err < 0.05) break;  // good enough; stop escalating
  }
  if (!best) throw std::runtime_error("fitGaussianSubmodel: all fits failed");
  if (report != nullptr) report->best_error = best_err;
  return best;
}

Waveform simulateSubmodel(const DiscreteSubmodel& model, const Waveform& v,
                          double v_initial) {
  if (v.empty()) throw std::invalid_argument("simulateSubmodel: empty input");
  // Parallel (output-error) form at the waveform's own sampling step: for
  // v.dt() == Ts this is the original shift register (tau = 1); for finer
  // waveforms the model is resampled per Eq. (13), as at solver runtime.
  ResampledSubmodelState state(&model, v.dt());
  state.reset(v_initial);
  Vector out;
  out.reserve(v.size());
  for (std::size_t m = 0; m < v.size(); ++m) {
    double didv = 0.0;
    out.push_back(state.eval(v[m], didv));
    state.commit(v[m]);
  }
  return Waveform(v.t0(), v.dt(), std::move(out));
}

SwitchingWeights extractSwitchingWeights(
    const GaussianRbfSubmodel& up, const GaussianRbfSubmodel& down,
    const Waveform& v1, const Waveform& i1, const Waveform& v2,
    const Waveform& i2, const BitPattern& pattern,
    const WeightExtractionOptions& opt) {
  checkRecord(v1, i1, up.order(), "extractSwitchingWeights(record 1)");
  checkRecord(v2, i2, up.order(), "extractSwitchingWeights(record 2)");
  if (v1.size() != v2.size() || std::abs(v1.dt() - v2.dt()) > 1e-18)
    throw std::invalid_argument("extractSwitchingWeights: records must share a time base");

  const auto edges = pattern.edges();
  // Expect: initial level + exactly two transitions (e.g. "010").
  if (edges.size() != 3)
    throw std::invalid_argument(
        "extractSwitchingWeights: pattern must contain exactly one rising and "
        "one falling edge (e.g. '010')");

  // Simulate the fixed-state submodels along each recorded port voltage.
  const double v_init1 = v1[0];
  const double v_init2 = v2[0];
  const Waveform iu1 = simulateSubmodel(up, v1, v_init1);
  const Waveform id1 = simulateSubmodel(down, v1, v_init1);
  const Waveform iu2 = simulateSubmodel(up, v2, v_init2);
  const Waveform id2 = simulateSubmodel(down, v2, v_init2);

  // Scale for the relative ridge.
  double i_max = 0.0;
  for (std::size_t m = 0; m < i1.size(); ++m) {
    i_max = std::max({i_max, std::abs(i1[m]), std::abs(i2[m])});
  }
  const double mu = opt.ridge * std::max(i_max * i_max, 1e-20);

  // Per-sample 2x2 ridge solve, regularized toward the previous sample.
  const int start_level = edges.front().level;
  Vector wu(v1.size()), wd(v1.size());
  double wu_prev = start_level != 0 ? 1.0 : 0.0;
  double wd_prev = 1.0 - wu_prev;
  for (std::size_t m = 0; m < v1.size(); ++m) {
    const double a11 = iu1[m], a12 = id1[m];
    const double a21 = iu2[m], a22 = id2[m];
    const double b1 = i1[m], b2 = i2[m];
    // Normal equations (A^T A + mu I) w = A^T b + mu w_prev.
    const double g11 = a11 * a11 + a21 * a21 + mu;
    const double g12 = a11 * a12 + a21 * a22;
    const double g22 = a12 * a12 + a22 * a22 + mu;
    const double r1 = a11 * b1 + a21 * b2 + mu * wu_prev;
    const double r2 = a12 * b1 + a22 * b2 + mu * wd_prev;
    const double det = g11 * g22 - g12 * g12;
    double wum = wu_prev, wdm = wd_prev;
    if (std::abs(det) > 1e-30) {
      wum = (r1 * g22 - g12 * r2) / det;
      wdm = (g11 * r2 - g12 * r1) / det;
    }
    wum = std::clamp(wum, opt.clamp_lo, opt.clamp_hi);
    wdm = std::clamp(wdm, opt.clamp_lo, opt.clamp_hi);
    wu[m] = wum;
    wd[m] = wdm;
    wu_prev = wum;
    wd_prev = wdm;
  }

  // Cut templates around each edge.
  const double ts = v1.dt();
  const double span = opt.template_span > 0.0 ? opt.template_span : pattern.bitTime();
  const auto n_tmpl = static_cast<std::size_t>(span / ts);

  auto cut = [&](double t_edge, double steady_wu, double steady_wd)
      -> std::pair<Waveform, Waveform> {
    const auto m0 = static_cast<std::size_t>(std::max(0.0, t_edge / ts));
    Vector tu, td;
    tu.reserve(n_tmpl);
    td.reserve(n_tmpl);
    for (std::size_t k = 0; k < n_tmpl && m0 + k < wu.size(); ++k) {
      // Blend the final 10% of the template into the exact steady values so
      // the runtime hand-off at template end is continuous.
      const double frac = static_cast<double>(k) / static_cast<double>(n_tmpl);
      const double blend = frac > 0.9 ? (frac - 0.9) / 0.1 : 0.0;
      tu.push_back((1.0 - blend) * wu[m0 + k] + blend * steady_wu);
      td.push_back((1.0 - blend) * wd[m0 + k] + blend * steady_wd);
    }
    return {Waveform(0.0, ts, std::move(tu)), Waveform(0.0, ts, std::move(td))};
  };

  SwitchingWeights result;
  for (std::size_t e = 1; e < edges.size(); ++e) {
    if (edges[e].level != 0) {
      auto [tu, td] = cut(edges[e].time, 1.0, 0.0);
      result.wu_up = std::move(tu);
      result.wd_up = std::move(td);
    } else {
      auto [tu, td] = cut(edges[e].time, 0.0, 1.0);
      result.wu_down = std::move(tu);
      result.wd_down = std::move(td);
    }
  }
  return result;
}

RbfReceiverModel fitReceiverModel(const Waveform& v_lin, const Waveform& i_lin,
                                  const Waveform& v_full, const Waveform& i_full,
                                  double vdd, const ReceiverFitOptions& opt) {
  if (opt.order < 1) throw std::invalid_argument("fitReceiverModel: order must be >= 1");
  checkRecord(v_lin, i_lin, opt.order, "fitReceiverModel(linear record)");
  checkRecord(v_full, i_full, opt.order, "fitReceiverModel(full record)");
  if (vdd <= 0.0) throw std::invalid_argument("fitReceiverModel: vdd must be > 0");

  const auto r = static_cast<std::size_t>(opt.order);
  const std::size_t n = v_lin.size();

  // --- Linear ARX fit: i_m = sum a_k i_{m-k} + b_0 v_m + sum b_k v_{m-k}.
  const std::size_t n_rows = n - r;
  const std::size_t n_cols = 2 * r + 1;
  Matrix design(n_rows, n_cols);
  Vector target(n_rows);
  for (std::size_t row = 0; row < n_rows; ++row) {
    const std::size_t m = row + r;
    std::size_t c = 0;
    for (std::size_t k = 1; k <= r; ++k) design(row, c++) = i_lin[m - k];
    design(row, c++) = v_lin[m];
    for (std::size_t k = 1; k <= r; ++k) design(row, c++) = v_lin[m - k];
    target[row] = i_lin[m];
  }
  const Vector coeffs = solveLeastSquares(design, target, opt.linear_ridge);

  LinearArxParams lp;
  lp.order = opt.order;
  lp.ts = v_lin.dt();
  lp.a.assign(coeffs.begin(), coeffs.begin() + static_cast<std::ptrdiff_t>(r));
  lp.b.assign(coeffs.begin() + static_cast<std::ptrdiff_t>(r), coeffs.end());
  auto lin = std::make_shared<LinearArxSubmodel>(lp);

  // Stabilize the feedback polynomial if needed (radial shrink of the
  // companion spectrum: a_k <- a_k * s^k with s < 1 scales all poles by s).
  double rho = lin->poleRadius();
  int guard = 0;
  while (rho >= 0.999 && guard++ < 40) {
    const double s = 0.98 * 0.999 / rho;
    double sk = 1.0;
    for (std::size_t k = 0; k < r; ++k) {
      sk *= s;
      lp.a[k] *= sk;
    }
    lin = std::make_shared<LinearArxSubmodel>(lp);
    rho = lin->poleRadius();
  }

  // --- Clamp fits on the residual of the full-range record.
  const Waveform i_lin_sim = simulateSubmodel(*lin, v_full, v_full[0]);
  const std::size_t nf = v_full.size();
  Vector resid_up(nf, 0.0), resid_down(nf, 0.0);
  const double w_band = 0.05;  // mask transition sharpness [V]
  for (std::size_t m = 0; m < nf; ++m) {
    const double resid = i_full[m] - i_lin_sim[m];
    const double mask_up = 1.0 / (1.0 + std::exp(-(v_full[m] - (vdd - opt.v_margin)) / w_band));
    const double mask_down = 1.0 / (1.0 + std::exp(-((opt.v_margin) - v_full[m]) / w_band));
    resid_up[m] = resid * mask_up;
    resid_down[m] = resid * mask_down;
  }

  SubmodelFitOptions so;
  so.order = opt.order;
  so.centers = opt.centers;
  so.beta_scale = opt.beta_scale;
  so.ridge = opt.ridge;
  so.seed = opt.seed;
  auto up = fitGaussianSubmodel(v_full, Waveform(v_full.t0(), v_full.dt(), resid_up), so);
  so.seed = opt.seed + 1;
  auto down = fitGaussianSubmodel(v_full, Waveform(v_full.t0(), v_full.dt(), resid_down), so);

  RbfReceiverModel model;
  model.lin = std::move(lin);
  model.up = std::move(up);
  model.down = std::move(down);
  model.ts = v_lin.dt();
  model.vdd = vdd;
  return model;
}

}  // namespace fdtdmm
