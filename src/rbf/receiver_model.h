#pragma once
/// \file receiver_model.h
/// RBF macromodel of a digital input port (receiver), Eq. (6) of the paper:
///   i^m = i_lin^m + i_nl,u^m + i_nl,d^m
/// A linear parametric submodel captures the mostly-linear behavior within
/// the supply range; two Gaussian RBF submodels capture the nonlinear
/// static/dynamic effects of the up and down protection circuits.

#include <memory>

#include "rbf/resampling.h"
#include "rbf/submodel.h"
#include "signal/port_model.h"

namespace fdtdmm {

/// Complete receiver macromodel.
struct RbfReceiverModel {
  std::shared_ptr<const LinearArxSubmodel> lin;       ///< i_lin
  std::shared_ptr<const GaussianRbfSubmodel> up;      ///< i_nl,u (to-Vdd clamp)
  std::shared_ptr<const GaussianRbfSubmodel> down;    ///< i_nl,d (to-ground clamp)
  double ts = 50e-12;
  double vdd = 1.8;
};

/// Runtime adapter exposing the receiver through PortModel; keeps three
/// resampled regressor states advanced per Eq. (13).
class RbfReceiverPort final : public PortModel {
 public:
  /// \throws std::invalid_argument if the model is incomplete.
  explicit RbfReceiverPort(std::shared_ptr<const RbfReceiverModel> model,
                           double v_initial = 0.0);

  void prepare(double dt) override;
  double current(double v, double t, double& didv) override;
  void commit(double v, double t) override;
  std::string name() const override { return "rbf-receiver"; }

  double tau() const;

 private:
  std::shared_ptr<const RbfReceiverModel> model_;
  double v_initial_;
  std::unique_ptr<ResampledSubmodelState> state_lin_;
  std::unique_ptr<ResampledSubmodelState> state_up_;
  std::unique_ptr<ResampledSubmodelState> state_down_;
};

}  // namespace fdtdmm
