#pragma once
/// \file identification.h
/// Macromodel identification (the "rigorous identification procedure" of
/// Section 2, following refs [6-8] of the paper). All fits are linear in
/// the RBF weights theta, so the core operation is a ridge least-squares
/// solve over a design matrix of Gaussian basis evaluations; centers are
/// placed by k-means in the normalized regressor space.
///
/// Inputs are plain (voltage, current) waveform pairs sampled at the model
/// sampling time Ts — the pipeline never sees the device internals.

#include <cstdint>
#include <memory>

#include "rbf/driver_model.h"
#include "rbf/receiver_model.h"
#include "rbf/submodel.h"
#include "signal/bit_pattern.h"
#include "signal/waveform.h"

namespace fdtdmm {

/// Options for fitting one Gaussian RBF submodel.
struct SubmodelFitOptions {
  int order = 2;              ///< regressor depth r
  std::size_t centers = 40;   ///< number of Gaussian centers L
  double beta_scale = 1.0;    ///< beta = beta_scale * mean NN center spacing
  double ridge = 1e-8;        ///< Tikhonov weight on theta
  std::uint64_t seed = 1234;  ///< k-means seed
  /// Include past *currents* in the regressor (the x_i of Eq. 2). With
  /// output feedback the parallel-form model can acquire spurious
  /// equilibria from an equation-error fit; the default is the
  /// voltage-only alternative form the paper allows ("alternative forms
  /// can be conceived"), which has a unique equilibrium per voltage and is
  /// unconditionally stable in parallel form.
  bool use_current_regressors = false;
};

/// Diagnostics of a submodel fit (one entry per ridge-escalation attempt).
struct FitReport {
  struct Attempt {
    double ridge = 0.0;
    double parallel_nrmse = 0.0;   ///< parallel run at Ts vs targets
    double resampled_nrmse = 0.0;  ///< resampled run at Ts/8 vs targets
    double theta_max_abs = 0.0;
  };
  std::vector<Attempt> attempts;
  double best_error = 0.0;   ///< max of the two errors for the kept model
  double beta = 0.0;
  double i_scale = 0.0;
  std::size_t anchors = 0;   ///< DC anchor rows used
};

/// Fits a Gaussian RBF submodel to a (v, i) record sampled at Ts = v.dt().
/// The equation-error (series-parallel) formulation is used: regressors are
/// built from *measured* past samples, making the fit linear in theta;
/// candidates are then validated in parallel form (at Ts and resampled at
/// Ts/8) with ridge escalation. If `report` is non-null it receives the
/// per-attempt diagnostics.
/// \throws std::invalid_argument on mismatched/too-short records.
std::shared_ptr<GaussianRbfSubmodel> fitGaussianSubmodel(
    const Waveform& v, const Waveform& i, const SubmodelFitOptions& opt = {},
    FitReport* report = nullptr);

/// Simulates a submodel in parallel (output-error) form along a given port
/// voltage waveform: the current regressor is fed back from the model's own
/// outputs, exactly as at runtime. Returns the current waveform at Ts.
Waveform simulateSubmodel(const DiscreteSubmodel& model, const Waveform& v,
                          double v_initial = 0.0);

/// Options for the two-load switching weight extraction.
struct WeightExtractionOptions {
  double ridge = 1e-3;          ///< relative ridge toward the previous sample's weights
  double template_span = 0.0;   ///< template length [s]; 0 = one bit time
  double clamp_lo = -0.5;       ///< lower clamp on weights
  double clamp_hi = 1.5;        ///< upper clamp on weights
};

/// Extracts the switching weight templates w_u, w_d of Eq. (5) from two
/// switching records obtained under *different* load conditions. For each
/// record, the fixed-state submodels are simulated along the recorded port
/// voltage; each time sample then yields a 2x2 linear system for
/// (w_u, w_d), regularized toward the previous sample.
/// `pattern` must contain exactly one rising and one falling edge (e.g.
/// "010"), and both records must cover it.
/// \throws std::invalid_argument on inconsistent inputs.
SwitchingWeights extractSwitchingWeights(
    const GaussianRbfSubmodel& up, const GaussianRbfSubmodel& down,
    const Waveform& v1, const Waveform& i1, const Waveform& v2,
    const Waveform& i2, const BitPattern& pattern,
    const WeightExtractionOptions& opt = {});

/// Options for the receiver fit.
struct ReceiverFitOptions {
  int order = 2;
  std::size_t centers = 25;      ///< per clamp submodel
  double beta_scale = 1.0;
  double ridge = 1e-8;
  double linear_ridge = 1e-10;   ///< ridge for the ARX fit
  double v_margin = 0.2;         ///< clamp mask transition band [V]
  std::uint64_t seed = 4321;
};

/// Fits the Eq. (6) receiver model. (v_lin, i_lin) is an excitation
/// confined to the supply range (identifies the linear submodel);
/// (v_full, i_full) spans beyond the rails (identifies the clamps from the
/// residual current after removing the simulated linear part).
/// The linear submodel's poles are stabilized by radial shrinking if the
/// raw fit is unstable, preserving the premise of the paper's Eq. (14).
RbfReceiverModel fitReceiverModel(const Waveform& v_lin, const Waveform& i_lin,
                                  const Waveform& v_full, const Waveform& i_full,
                                  double vdd, const ReceiverFitOptions& opt = {});

}  // namespace fdtdmm
