#include "rbf/resampling.h"

#include <cmath>
#include <stdexcept>

namespace fdtdmm {

std::complex<double> resampleEigenvalue(std::complex<double> lambda, double tau) {
  return 1.0 + tau * (lambda - 1.0);
}

std::complex<double> continuousEigenvalue(std::complex<double> lambda, double ts) {
  if (ts <= 0.0) throw std::invalid_argument("continuousEigenvalue: ts must be > 0");
  return (lambda - 1.0) / ts;
}

Matrix buildQMatrix(int r, double tau) {
  if (r < 1) throw std::invalid_argument("buildQMatrix: order must be >= 1");
  if (tau <= 0.0 || tau > 1.0)
    throw std::invalid_argument("buildQMatrix: tau must be in (0, 1] (Eq. 17)");
  Matrix q(static_cast<std::size_t>(r), static_cast<std::size_t>(r));
  for (int i = 0; i < r; ++i) {
    q(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = 1.0 - tau;
    if (i > 0) q(static_cast<std::size_t>(i), static_cast<std::size_t>(i - 1)) = tau;
  }
  return q;
}

Matrix resampleStateMatrix(const Matrix& a, double tau) {
  if (a.rows() != a.cols()) throw std::invalid_argument("resampleStateMatrix: square matrix required");
  Matrix out = a;
  out *= tau;
  for (std::size_t i = 0; i < a.rows(); ++i) out(i, i) += 1.0 - tau;
  return out;
}

ResampledSubmodelState::ResampledSubmodelState(const DiscreteSubmodel* model, double dt)
    : model_(model) {
  if (model_ == nullptr)
    throw std::invalid_argument("ResampledSubmodelState: null submodel");
  if (dt <= 0.0) throw std::invalid_argument("ResampledSubmodelState: dt must be > 0");
  tau_ = dt / model_->ts();
  if (tau_ > 1.0 + 1e-12)
    throw std::invalid_argument(
        "ResampledSubmodelState: tau = dt/Ts > 1 violates the stability "
        "constraint of Eq. (17); refine the model sampling time");
  tau_ = std::min(tau_, 1.0);
  const auto r = static_cast<std::size_t>(model_->order());
  xv_.assign(r, 0.0);
  xi_.assign(r, 0.0);
}

void ResampledSubmodelState::reset(double v0) {
  const auto r = static_cast<std::size_t>(model_->order());
  xv_.assign(r, v0);
  // Steady current is the fixed point of g(i0) = F(i0*1, v0, v0*1) - i0 = 0.
  // Newton with a numerical derivative (robust against the Gaussian
  // nonlinearity), seeded at the model's open-loop prediction; fall back to
  // damped fixed-point iteration if Newton stalls.
  auto g = [&](double i0) {
    xi_.assign(r, i0);
    return model_->eval(v0, xv_, xi_, nullptr) - i0;
  };
  xi_.assign(r, 0.0);
  double i0 = model_->eval(v0, xv_, xi_, nullptr);  // open-loop seed
  bool converged = false;
  for (int it = 0; it < 60; ++it) {
    const double f = g(i0);
    if (std::abs(f) < 1e-15 * (1.0 + std::abs(i0))) {
      converged = true;
      break;
    }
    const double h = 1e-7 * (1.0 + std::abs(i0));
    const double df = (g(i0 + h) - g(i0 - h)) / (2.0 * h);
    if (std::abs(df) < 1e-12) break;
    const double step = -f / df;
    i0 += step;
    if (!std::isfinite(i0)) {
      i0 = 0.0;
      break;
    }
  }
  if (!converged) {
    for (int it = 0; it < 500; ++it) {
      const double f = g(i0) + i0;  // F itself
      const double next = 0.5 * i0 + 0.5 * f;
      if (std::abs(next - i0) < 1e-16 * (1.0 + std::abs(next))) {
        i0 = next;
        break;
      }
      i0 = next;
    }
  }
  xi_.assign(r, i0);
}

double ResampledSubmodelState::eval(double v, double& didv) const {
  return model_->eval(v, xv_, xi_, &didv);
}

void ResampledSubmodelState::advance(Vector& x, double input) const {
  // x <- Q x + tau e_1 input, processed in descending index order so each
  // x[j-1] read is the pre-update value.
  for (std::size_t j = x.size(); j-- > 1;) {
    x[j] = (1.0 - tau_) * x[j] + tau_ * x[j - 1];
  }
  x[0] = (1.0 - tau_) * x[0] + tau_ * input;
}

void ResampledSubmodelState::commit(double v) {
  double unused = 0.0;
  const double i = model_->eval(v, xv_, xi_, &unused);
  advance(xi_, i);
  advance(xv_, v);
}

}  // namespace fdtdmm
