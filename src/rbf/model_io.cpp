#include "rbf/model_io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fdtdmm {

namespace {

constexpr const char* kDriverMagic = "fdtdmm-driver-model-v1";
constexpr const char* kReceiverMagic = "fdtdmm-receiver-model-v1";

void expectToken(std::istream& in, const std::string& expected) {
  std::string tok;
  if (!(in >> tok) || tok != expected)
    throw std::runtime_error("model_io: expected token '" + expected + "', got '" + tok + "'");
}

void writeWaveform(std::ostream& out, const std::string& tag, const Waveform& w) {
  out << tag << " " << w.size() << " " << w.t0() << " " << w.dt() << "\n";
  for (std::size_t k = 0; k < w.size(); ++k) out << w[k] << "\n";
}

Waveform readWaveform(std::istream& in, const std::string& tag) {
  expectToken(in, tag);
  std::size_t n = 0;
  double t0 = 0.0, dt = 1.0;
  if (!(in >> n >> t0 >> dt)) throw std::runtime_error("model_io: bad waveform header");
  Vector s(n);
  for (std::size_t k = 0; k < n; ++k) {
    if (!(in >> s[k])) throw std::runtime_error("model_io: truncated waveform");
  }
  if (n == 0) return Waveform();
  return Waveform(t0, dt, std::move(s));
}

void writeGaussian(std::ostream& out, const std::string& tag,
                   const GaussianRbfSubmodel& m) {
  const GaussianRbfParams& p = m.params();
  out << tag << " " << p.order << " " << p.ts << " " << p.beta << " "
      << p.i_scale << " " << p.theta.size() << " " << p.affine.size() << "\n";
  for (double x : p.affine) out << x << " ";
  if (!p.affine.empty()) out << "\n";
  for (std::size_t l = 0; l < p.theta.size(); ++l) {
    out << p.theta[l] << " " << p.c0[l];
    for (double x : p.cv[l]) out << " " << x;
    for (double x : p.ci[l]) out << " " << x;
    out << "\n";
  }
}

std::shared_ptr<GaussianRbfSubmodel> readGaussian(std::istream& in,
                                                  const std::string& tag) {
  expectToken(in, tag);
  GaussianRbfParams p;
  std::size_t l = 0;
  std::size_t n_aff = 0;
  if (!(in >> p.order >> p.ts >> p.beta >> p.i_scale >> l >> n_aff))
    throw std::runtime_error("model_io: bad submodel header");
  p.affine.resize(n_aff);
  for (double& x : p.affine) {
    if (!(in >> x)) throw std::runtime_error("model_io: truncated affine tail");
  }
  p.theta.resize(l);
  p.c0.resize(l);
  p.cv.assign(l, Vector(static_cast<std::size_t>(p.order)));
  p.ci.assign(l, Vector(static_cast<std::size_t>(p.order)));
  for (std::size_t c = 0; c < l; ++c) {
    if (!(in >> p.theta[c] >> p.c0[c]))
      throw std::runtime_error("model_io: truncated submodel");
    for (double& x : p.cv[c]) {
      if (!(in >> x)) throw std::runtime_error("model_io: truncated submodel");
    }
    for (double& x : p.ci[c]) {
      if (!(in >> x)) throw std::runtime_error("model_io: truncated submodel");
    }
  }
  return std::make_shared<GaussianRbfSubmodel>(std::move(p));
}

std::ofstream openOut(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("model_io: cannot open for writing: " + path);
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  return out;
}

std::ifstream openIn(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("model_io: cannot open for reading: " + path);
  return in;
}

}  // namespace

void writeDriverModel(const RbfDriverModel& model, std::ostream& out) {
  if (!model.up || !model.down)
    throw std::runtime_error("writeDriverModel: incomplete model");
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << kDriverMagic << "\n";
  out << "ts " << model.ts << " vdd " << model.vdd << "\n";
  writeGaussian(out, "submodel_up", *model.up);
  writeGaussian(out, "submodel_down", *model.down);
  writeWaveform(out, "wu_up", model.weights.wu_up);
  writeWaveform(out, "wd_up", model.weights.wd_up);
  writeWaveform(out, "wu_down", model.weights.wu_down);
  writeWaveform(out, "wd_down", model.weights.wd_down);
  if (!out) throw std::runtime_error("writeDriverModel: write failure");
}

RbfDriverModel readDriverModel(std::istream& in) {
  expectToken(in, kDriverMagic);
  RbfDriverModel m;
  expectToken(in, "ts");
  if (!(in >> m.ts)) throw std::runtime_error("readDriverModel: bad ts");
  expectToken(in, "vdd");
  if (!(in >> m.vdd)) throw std::runtime_error("readDriverModel: bad vdd");
  m.up = readGaussian(in, "submodel_up");
  m.down = readGaussian(in, "submodel_down");
  m.weights.wu_up = readWaveform(in, "wu_up");
  m.weights.wd_up = readWaveform(in, "wd_up");
  m.weights.wu_down = readWaveform(in, "wu_down");
  m.weights.wd_down = readWaveform(in, "wd_down");
  return m;
}

void saveDriverModel(const RbfDriverModel& model, const std::string& path) {
  auto out = openOut(path);
  writeDriverModel(model, out);
}

RbfDriverModel loadDriverModel(const std::string& path) {
  auto in = openIn(path);
  return readDriverModel(in);
}

void writeReceiverModel(const RbfReceiverModel& model, std::ostream& out) {
  if (!model.lin || !model.up || !model.down)
    throw std::runtime_error("writeReceiverModel: incomplete model");
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << kReceiverMagic << "\n";
  out << "ts " << model.ts << " vdd " << model.vdd << "\n";
  const LinearArxParams& lp = model.lin->params();
  out << "linear " << lp.order << " " << lp.ts << "\n";
  for (double x : lp.a) out << x << " ";
  out << "\n";
  for (double x : lp.b) out << x << " ";
  out << "\n";
  writeGaussian(out, "clamp_up", *model.up);
  writeGaussian(out, "clamp_down", *model.down);
  if (!out) throw std::runtime_error("writeReceiverModel: write failure");
}

RbfReceiverModel readReceiverModel(std::istream& in) {
  expectToken(in, kReceiverMagic);
  RbfReceiverModel m;
  expectToken(in, "ts");
  if (!(in >> m.ts)) throw std::runtime_error("readReceiverModel: bad ts");
  expectToken(in, "vdd");
  if (!(in >> m.vdd)) throw std::runtime_error("readReceiverModel: bad vdd");
  expectToken(in, "linear");
  LinearArxParams lp;
  if (!(in >> lp.order >> lp.ts)) throw std::runtime_error("readReceiverModel: bad linear header");
  lp.a.resize(static_cast<std::size_t>(lp.order));
  lp.b.resize(static_cast<std::size_t>(lp.order) + 1);
  for (double& x : lp.a) {
    if (!(in >> x)) throw std::runtime_error("readReceiverModel: truncated linear a");
  }
  for (double& x : lp.b) {
    if (!(in >> x)) throw std::runtime_error("readReceiverModel: truncated linear b");
  }
  m.lin = std::make_shared<LinearArxSubmodel>(std::move(lp));
  m.up = readGaussian(in, "clamp_up");
  m.down = readGaussian(in, "clamp_down");
  return m;
}

void saveReceiverModel(const RbfReceiverModel& model, const std::string& path) {
  auto out = openOut(path);
  writeReceiverModel(model, out);
}

RbfReceiverModel loadReceiverModel(const std::string& path) {
  auto in = openIn(path);
  return readReceiverModel(in);
}

}  // namespace fdtdmm
