#include "devices/cmos_driver.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace fdtdmm {

CmosDriverInstance buildCmosDriver(Circuit& circuit, const CmosDriverParams& p,
                                   TimeFn logic) {
  if (!logic) throw std::invalid_argument("buildCmosDriver: null logic function");

  CmosDriverInstance inst;
  inst.vdd = circuit.addNode();
  inst.pad = circuit.addNode();
  inst.gate = circuit.addNode();
  const int pre = circuit.addNode();  // ideal pre-driver output

  const double vdd = p.vdd;
  circuit.addVoltageSource(inst.vdd, Circuit::kGround, [vdd](double) { return vdd; });

  // Pre-driver: inverting stage modeled as an ideal source with finite edge
  // time followed by an RC. logic = 1 -> gates low -> PMOS on -> pad HIGH.
  const double te = p.edge_time;
  TimeFn gate_drive = [logic = std::move(logic), vdd, te](double t) {
    // First-order hold of the logic value over the edge time: average the
    // logic level across [t - te, t] to produce a finite-slope inversion.
    const int n = 8;
    double acc = 0.0;
    for (int k = 0; k < n; ++k) {
      acc += logic(t - te * (static_cast<double>(k) + 0.5) / n);
    }
    const double level = acc / n;
    return vdd * (1.0 - level);
  };
  circuit.addVoltageSource(pre, Circuit::kGround, std::move(gate_drive));
  // Pre-driver chain: `pre_stages` RC gate stages in cascade. The total
  // delay is kept independent of the stage count by splitting R and C.
  const int stages = std::max(1, p.pre_stages);
  int node = pre;
  for (int s = 0; s < stages; ++s) {
    const int next = (s == stages - 1) ? inst.gate : circuit.addNode();
    circuit.addResistor(node, next, p.r_gate / stages);
    circuit.addCapacitor(next, Circuit::kGround, p.c_gate / stages);
    node = next;
  }

  // Push-pull output stage, split into parallel fingers with identical
  // total drive strength.
  const int fingers = std::max(1, p.output_fingers);
  MosfetParams nmos;
  nmos.type = MosfetParams::Type::kNmos;
  nmos.vth = p.vth_n;
  nmos.k = p.k_n / fingers;
  nmos.lambda = p.lambda;
  MosfetParams pmos;
  pmos.type = MosfetParams::Type::kPmos;
  pmos.vth = p.vth_p;
  pmos.k = p.k_p / fingers;
  pmos.lambda = p.lambda;
  for (int f = 0; f < fingers; ++f) {
    // Each finger has a tiny local gate node (contact resistance) so the
    // netlist grows the way a real multi-finger layout does.
    int fgate = inst.gate;
    if (fingers > 1) {
      fgate = circuit.addNode();
      circuit.addResistor(inst.gate, fgate, 1.0);
      circuit.addCapacitor(fgate, Circuit::kGround, 1e-15);
    }
    circuit.addMosfet(inst.pad, fgate, Circuit::kGround, nmos);
    circuit.addMosfet(inst.pad, fgate, inst.vdd, pmos);
  }

  // Pad parasitics and Miller coupling.
  circuit.addCapacitor(inst.pad, Circuit::kGround, p.c_pad);
  circuit.addCapacitor(inst.gate, inst.pad, p.c_gd);

  // ESD clamps: conduct when the pad leaves the [0, vdd] range. Each path
  // has a series resistance (a bare ideal diode across a forced port would
  // draw unphysical kiloamp currents one volt past the rails).
  const int up_a = circuit.addNode();
  circuit.addResistor(inst.pad, up_a, p.r_clamp);
  circuit.addDiode(up_a, inst.vdd, p.clamp);  // up protection
  const int dn_a = circuit.addNode();
  circuit.addDiode(Circuit::kGround, dn_a, p.clamp);  // down protection
  circuit.addResistor(dn_a, inst.pad, p.r_clamp);

  return inst;
}

CmosReceiverInstance buildCmosReceiver(Circuit& circuit, const CmosReceiverParams& p) {
  CmosReceiverInstance inst;
  inst.vdd = circuit.addNode();
  inst.pad = circuit.addNode();
  const int internal = circuit.addNode();

  const double vdd = p.vdd;
  circuit.addVoltageSource(inst.vdd, Circuit::kGround, [vdd](double) { return vdd; });

  circuit.addResistor(inst.pad, internal, p.r_series);
  circuit.addCapacitor(internal, Circuit::kGround, p.c_in);
  circuit.addResistor(internal, Circuit::kGround, p.r_in);

  // Protection diodes at the pad, each behind its clamp-path resistance.
  const int up_a = circuit.addNode();
  circuit.addResistor(inst.pad, up_a, p.r_clamp);
  circuit.addDiode(up_a, inst.vdd, p.clamp);  // up protection
  const int dn_a = circuit.addNode();
  circuit.addDiode(Circuit::kGround, dn_a, p.clamp);  // down protection
  circuit.addResistor(dn_a, inst.pad, p.r_clamp);

  return inst;
}

}  // namespace fdtdmm
