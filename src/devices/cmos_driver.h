#pragma once
/// \file cmos_driver.h
/// Transistor-level CMOS output driver and input receiver. This is the
/// in-repo substitute for the paper's "commercial high-speed CMOS driver
/// (Vss = 0 V, Vdd = 1.8 V) used in IBM mainframe products": a push-pull
/// inverter output stage with square-law MOSFETs, pre-driver edge shaping,
/// ESD clamp diodes and pad capacitance. The RBF macromodeling pipeline
/// treats it as a black box, exactly as the paper treats the IBM part.

#include "circuit/circuit.h"

namespace fdtdmm {

/// Parameters of the transistor-level driver.
struct CmosDriverParams {
  double vdd = 1.8;        ///< supply [V]
  double vth_n = 0.40;     ///< NMOS threshold [V]
  double vth_p = 0.42;     ///< PMOS threshold magnitude [V]
  double k_n = 0.030;      ///< NMOS transconductance factor [A/V^2]
  double k_p = 0.036;      ///< PMOS transconductance factor [A/V^2]
  double lambda = 0.06;    ///< channel-length modulation [1/V]
  double c_pad = 1.5e-12;  ///< pad + drain junction capacitance [F]
  double c_gd = 0.25e-12;  ///< gate-drain (Miller) coupling cap [F]
  double r_gate = 60.0;    ///< pre-driver output resistance [ohm]
  double c_gate = 0.5e-12; ///< gate capacitance [F]
  double edge_time = 0.25e-9;  ///< pre-driver logic edge time [s]
  DiodeParams clamp{};     ///< ESD clamp diode parameters
  double r_clamp = 3.0;    ///< series resistance of each clamp path [ohm]
  /// Structural complexity knobs. Real off-chip drivers are built from
  /// many parallel output fingers behind a chain of pre-driver stages;
  /// splitting the output stage into `fingers` MOSFET pairs (each with
  /// k/fingers) and inserting `pre_stages` RC-loaded gate stages leaves
  /// the port behavior essentially unchanged while scaling the netlist —
  /// the axis along which the paper's macromodel-speedup claim lives.
  int output_fingers = 1;
  int pre_stages = 1;
};

/// Handle to a driver instance embedded in a Circuit.
struct CmosDriverInstance {
  int pad = 0;   ///< output pad node (port + terminal; port - is ground)
  int vdd = 0;   ///< supply rail node
  int gate = 0;  ///< internal gate node (after pre-driver RC)
};

/// Builds the transistor-level driver into `circuit`. `logic` maps time to
/// a logic level in [0, 1]; the pre-driver converts it to complementary
/// gate drive so the pad *follows* the logic value (logic 1 -> pad HIGH).
/// \throws std::invalid_argument on a null logic function.
CmosDriverInstance buildCmosDriver(Circuit& circuit, const CmosDriverParams& p,
                                   TimeFn logic);

/// Parameters of the transistor-level receiver (input port).
struct CmosReceiverParams {
  double vdd = 1.8;          ///< supply [V]
  double r_series = 4.0;     ///< pad series resistance [ohm]
  double c_in = 1.2e-12;     ///< input capacitance [F]
  double r_in = 50e3;        ///< input leakage resistance to ground [ohm]
  DiodeParams clamp{};       ///< protection diodes to the rails
  double r_clamp = 3.0;      ///< series resistance of each clamp path [ohm]
};

/// Handle to a receiver instance embedded in a Circuit.
struct CmosReceiverInstance {
  int pad = 0;  ///< input pad node (port + terminal; port - is ground)
  int vdd = 0;  ///< supply rail node
};

/// Builds the transistor-level receiver into `circuit`.
CmosReceiverInstance buildCmosReceiver(Circuit& circuit, const CmosReceiverParams& p);

}  // namespace fdtdmm
