#include "devices/training.h"

#include <stdexcept>

#include "circuit/transient.h"

namespace fdtdmm {

namespace {

/// Runs `circuit` with a forcing source on `pad` given by v_force, and
/// returns the port record (voltage, current into the pad).
PortRecord forceAndRecord(Circuit& circuit, int pad, const Waveform& v_force,
                          const RecordingOptions& opt) {
  if (v_force.empty()) throw std::invalid_argument("forceAndRecord: empty forcing waveform");
  VoltageSource* src = circuit.addVoltageSource(
      pad, Circuit::kGround, [&v_force](double t) { return v_force.value(t); });

  TransientOptions topt;
  topt.dt = opt.dt;
  topt.t_stop = v_force.tEnd();
  topt.settle_time = opt.settle_time;

  auto res = runTransient(circuit, topt, {{"v", pad, Circuit::kGround}},
                          {{"i_src", src}});

  // The probed branch current flows from the pad through the source; the
  // current into the device is its negative.
  Waveform i = res.at("i_src");
  for (double& s : i.samples()) s = -s;
  return {res.at("v"), std::move(i)};
}

}  // namespace

PortRecord recordDriverFixedState(const CmosDriverParams& params, bool high,
                                  const Waveform& v_force,
                                  const RecordingOptions& opt) {
  Circuit circuit;
  const double level = high ? 1.0 : 0.0;
  auto drv = buildCmosDriver(circuit, params, [level](double) { return level; });
  return forceAndRecord(circuit, drv.pad, v_force, opt);
}

PortRecord recordDriverWithLoad(const CmosDriverParams& params, TimeFn logic,
                                double r_load, double v_ref, double t_stop,
                                const RecordingOptions& opt) {
  if (r_load <= 0.0) throw std::invalid_argument("recordDriverWithLoad: R must be > 0");
  if (t_stop <= 0.0) throw std::invalid_argument("recordDriverWithLoad: t_stop must be > 0");
  Circuit circuit;
  auto drv = buildCmosDriver(circuit, params, std::move(logic));

  // Resistive load to the reference voltage. The port current *into the
  // device* equals the current delivered by the load: (v_ref - v_pad)/R.
  // Measure it through an ideal source so the sign handling matches the
  // forced-port records.
  const int ref = circuit.addNode();
  VoltageSource* src =
      circuit.addVoltageSource(ref, Circuit::kGround, [v_ref](double) { return v_ref; });
  circuit.addResistor(drv.pad, ref, r_load);

  TransientOptions topt;
  topt.dt = opt.dt;
  topt.t_stop = t_stop;
  topt.settle_time = opt.settle_time;

  auto res = runTransient(circuit, topt, {{"v", drv.pad, Circuit::kGround}},
                          {{"i_src", src}});

  // Branch current flows ref -> through source -> ground; current into the
  // device pad is the current through R from ref to pad, which equals the
  // current *out of* the source's positive terminal externally = -i_src.
  Waveform i = res.at("i_src");
  for (double& s : i.samples()) s = -s;
  return {res.at("v"), std::move(i)};
}

PortRecord recordReceiverForced(const CmosReceiverParams& params,
                                const Waveform& v_force,
                                const RecordingOptions& opt) {
  Circuit circuit;
  auto rcv = buildCmosReceiver(circuit, params);
  return forceAndRecord(circuit, rcv.pad, v_force, opt);
}

PortRecord resampleRecord(const PortRecord& rec, double ts) {
  return {rec.v.resampled(ts), rec.i.resampled(ts)};
}

}  // namespace fdtdmm
