#pragma once
/// \file training.h
/// Generation of macromodel training/validation records from the
/// transistor-level devices. A record is a pair of port waveforms
/// (voltage across the port, current *into* the device pad) sampled at a
/// uniform step; the identification pipeline consumes records without
/// knowing where they came from — mirroring the paper's workflow where the
/// IBM transistor-level model is only ever observed at its port.

#include "devices/cmos_driver.h"
#include "signal/waveform.h"

namespace fdtdmm {

/// Port voltage/current record with a common uniform time base.
struct PortRecord {
  Waveform v;  ///< port voltage [V]
  Waveform i;  ///< current into the device pad [A]
};

/// Simulation fidelity knobs for record generation.
struct RecordingOptions {
  double dt = 2e-12;          ///< circuit-engine step [s]
  double settle_time = 5e-9;  ///< pre-roll before t = 0
};

/// Forces the driver port with waveform `v_force` while the driver is held
/// at a fixed logic state (`high`), and records the port current. This is
/// the excitation used to identify the paper's time-invariant submodels
/// i_u (HIGH) and i_d (LOW) of Eq. (5).
PortRecord recordDriverFixedState(const CmosDriverParams& params, bool high,
                                  const Waveform& v_force,
                                  const RecordingOptions& opt = {});

/// Lets the driver run a logic waveform into a resistive load R_load
/// terminated to `v_ref`, recording port voltage and current. Two such
/// records with different loads feed the two-load switching-weight
/// extraction for w_u, w_d of Eq. (5).
PortRecord recordDriverWithLoad(const CmosDriverParams& params, TimeFn logic,
                                double r_load, double v_ref, double t_stop,
                                const RecordingOptions& opt = {});

/// Forces the receiver port with `v_force` and records the port current
/// (identification data for the Eq. (6) receiver model).
PortRecord recordReceiverForced(const CmosReceiverParams& params,
                                const Waveform& v_force,
                                const RecordingOptions& opt = {});

/// Resamples a record to sampling time ts (used to bring fine circuit-step
/// records to the macromodel sampling time Ts).
PortRecord resampleRecord(const PortRecord& rec, double ts);

}  // namespace fdtdmm
