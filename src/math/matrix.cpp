#include "math/matrix.h"

#include <cmath>
#include <stdexcept>

namespace fdtdmm {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: initializer rows have inconsistent lengths");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vector Matrix::operator*(const Vector& x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix*Vector: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix*Matrix: size mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix+=: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix-=: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

double Matrix::maxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double norm2(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double normInf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vector axpy(const Vector& a, double s, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("axpy: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

}  // namespace fdtdmm
