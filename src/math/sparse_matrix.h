#pragma once
/// \file sparse_matrix.h
/// Compressed-sparse-row stamp target for the MNA transient engine.
///
/// Lifecycle (two-phase, mirroring the engine's static/dynamic stamp split):
///
///  1. *Building*: after reset(n), add(r, c, v) accumulates coordinate
///     triplets. finalize() compiles them into CSR form — sorted column
///     indices per row, duplicates summed — fixing the *symbolic pattern*.
///  2. *Finalized*: add(r, c, v) scatters into the existing pattern by
///     binary search, refreshing numeric values in place with no
///     allocation. An add outside the pattern (a nonlinear stamp touching
///     a structurally-new entry, e.g. a MOSFET swapping drain/source) is
///     buffered in an overflow list and flagged via patternGrown(); the
///     engine then calls mergeOverflow() to extend the pattern once and
///     re-align the cached base matrix with adoptPatternOf(). Pattern
///     growth therefore costs one recompile per new position set, after
///     which every iteration is allocation-free again.
///
/// Pattern identity is tracked by a process-unique version stamp: two
/// matrices with equal patternVersion() are guaranteed to share the same
/// pattern (copies inherit the stamp; any pattern change takes a fresh
/// one), which is what lets setValuesFrom() be a plain memcpy.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/matrix.h"

namespace fdtdmm {

/// Square sparse matrix in CSR form with a COO building phase.
class SparseMatrix {
 public:
  /// Creates an empty (dimension-0, building) matrix; call reset().
  SparseMatrix() = default;

  /// Starts a building phase for an n x n matrix (previous content
  /// discarded).
  explicit SparseMatrix(std::size_t n) { reset(n); }

  void reset(std::size_t n);

  std::size_t dim() const { return n_; }
  bool finalized() const { return finalized_; }

  /// Building: appends a coordinate triplet. Finalized: adds v to the
  /// pattern entry (r, c), or buffers it as overflow when (r, c) is not in
  /// the pattern. \throws std::out_of_range if r or c >= dim().
  void add(std::size_t r, std::size_t c, double v);

  /// Compiles the accumulated triplets to CSR and fixes the pattern.
  /// \throws std::logic_error if already finalized.
  void finalize();

  /// True when finalized add()s have been buffered outside the pattern.
  bool patternGrown() const { return !overflow_.empty(); }

  /// Folds the buffered overflow entries into the pattern (new version
  /// stamp). No-op when patternGrown() is false.
  void mergeOverflow();

  /// Re-aligns this matrix's pattern with `other` (which must contain every
  /// entry of the current pattern — the engine grows work/base patterns in
  /// lockstep). Existing values are preserved; new entries are zero. After
  /// the call both matrices carry the same version stamp.
  /// \throws std::invalid_argument on dimension mismatch or if `other` is
  ///         missing an entry of this pattern.
  void adoptPatternOf(const SparseMatrix& other);

  /// Copies numeric values from `base`, which must share this matrix's
  /// pattern (equal patternVersion()). Allocation-free.
  /// \throws std::logic_error on a pattern mismatch.
  void setValuesFrom(const SparseMatrix& base);

  /// Zeroes the numeric values, keeping the pattern.
  void clearValues();

  /// Pattern identity stamp (see file comment). 0 while building.
  std::uint64_t patternVersion() const { return version_; }

  /// Number of stored entries (pattern size; finalized only).
  std::size_t nonZeros() const { return col_idx_.size(); }

  // CSR access (finalized only; row r spans [row_ptr[r], row_ptr[r+1])).
  const std::vector<std::size_t>& rowPtr() const { return row_ptr_; }
  const std::vector<std::size_t>& colIdx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Entry lookup; 0.0 for positions outside the pattern (finalized only).
  double at(std::size_t r, std::size_t c) const;

  /// y = A x (finalized only). \throws std::invalid_argument on size
  /// mismatch.
  Vector multiply(const Vector& x) const;

  /// Dense copy, for tests and diagnostics (finalized only).
  Matrix toDense() const;

 private:
  struct Triplet {
    std::size_t r, c;
    double v;
  };

  static std::uint64_t nextVersion();
  void compile(std::vector<Triplet>& entries);
  /// Index into values_ for (r, c), or npos when absent.
  std::size_t find(std::size_t r, std::size_t c) const;

  std::size_t n_ = 0;
  bool finalized_ = false;
  std::uint64_t version_ = 0;
  std::vector<Triplet> building_;  ///< COO accumulator (building phase)
  std::vector<Triplet> overflow_;  ///< out-of-pattern adds (finalized phase)
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace fdtdmm
