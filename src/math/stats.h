#pragma once
/// \file stats.h
/// Error metrics used to compare waveforms across simulation engines
/// (Figs. 4, 5 of the paper compare four engines on the same scenario),
/// plus the descriptive statistics the ensemble layer (Monte Carlo sweeps)
/// reports: sample stddev, quantiles, exceedance probabilities, and the
/// standard normal CDF / quantile pair used for inverse-CDF sampling.

#include <vector>

#include "math/matrix.h"

namespace fdtdmm {

/// Root mean square of a sequence. Returns 0 for an empty input.
double rms(const Vector& v);

/// RMS of (a - b). \throws std::invalid_argument on size mismatch.
double rmsError(const Vector& a, const Vector& b);

/// Normalized RMS error: rms(a-b) / (max(b) - min(b)).
/// \throws std::invalid_argument on size mismatch or flat reference.
double nrmse(const Vector& a, const Vector& reference);

/// Maximum absolute deviation. \throws std::invalid_argument on mismatch.
double maxAbsError(const Vector& a, const Vector& b);

/// Arithmetic mean (0 for empty input).
double mean(const Vector& v);

/// Min and max of a sequence. \throws std::invalid_argument if empty.
struct MinMax {
  double min;
  double max;
};
MinMax minMax(const Vector& v);

/// Sample standard deviation (n-1 denominator). Returns 0 when v has fewer
/// than two elements.
double stddev(const Vector& v);

/// Quantile q in [0, 1] with linear interpolation between order statistics
/// (R's default "type 7": h = (n-1)q). quantile(v, 0) = min, quantile(v, 1)
/// = max, quantile(v, 0.5) = median. Copies and sorts its input.
/// \throws std::invalid_argument on an empty input or q outside [0, 1].
double quantile(const Vector& v, double q);

/// Several quantiles of the same sample with one shared sort.
/// \throws std::invalid_argument on an empty input or any q outside [0, 1].
std::vector<double> quantiles(const Vector& v, const std::vector<double>& qs);

/// Fraction of samples exceeding `threshold`: P[x > t] when `above`,
/// P[x < t] otherwise (strict in both directions).
/// \throws std::invalid_argument on an empty input.
double exceedanceProbability(const Vector& v, double threshold, bool above);

/// Standard normal CDF Phi(x), accurate to machine precision (via erfc).
double normalCdf(double x);

/// Standard normal quantile Phi^-1(p) for p in (0, 1): Acklam's rational
/// approximation refined by one Halley step against normalCdf, accurate to
/// ~1 ulp. The inverse-CDF sampler for normal/truncated-normal stochastic
/// axes. \throws std::invalid_argument for p outside the open interval.
double normalQuantile(double p);

}  // namespace fdtdmm
