#pragma once
/// \file stats.h
/// Error metrics used to compare waveforms across simulation engines
/// (Figs. 4, 5 of the paper compare four engines on the same scenario).

#include "math/matrix.h"

namespace fdtdmm {

/// Root mean square of a sequence. Returns 0 for an empty input.
double rms(const Vector& v);

/// RMS of (a - b). \throws std::invalid_argument on size mismatch.
double rmsError(const Vector& a, const Vector& b);

/// Normalized RMS error: rms(a-b) / (max(b) - min(b)).
/// \throws std::invalid_argument on size mismatch or flat reference.
double nrmse(const Vector& a, const Vector& reference);

/// Maximum absolute deviation. \throws std::invalid_argument on mismatch.
double maxAbsError(const Vector& a, const Vector& b);

/// Arithmetic mean (0 for empty input).
double mean(const Vector& v);

/// Min and max of a sequence. \throws std::invalid_argument if empty.
struct MinMax {
  double min;
  double max;
};
MinMax minMax(const Vector& v);

}  // namespace fdtdmm
