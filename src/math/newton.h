#pragma once
/// \file newton.h
/// Newton-Raphson solvers. The scalar variant is the workhorse of the
/// hybrid FDTD/macromodel port solve (the coupled Eq. (8)+(13) system of the
/// paper reduces to one scalar unknown, the port voltage v^{n+1}); the vector
/// variant backs the MNA circuit engine.

#include <functional>

#include "math/matrix.h"

namespace fdtdmm {

/// Outcome of a Newton solve.
struct NewtonResult {
  bool converged = false;
  int iterations = 0;     ///< iterations actually performed
  double residual = 0.0;  ///< final |f| (scalar) or ||f||_inf (vector)
};

/// Options controlling Newton iteration.
struct NewtonOptions {
  int max_iterations = 50;
  double tolerance = 1e-9;     ///< convergence threshold on the residual
  double min_derivative = 1e-14;  ///< |f'| below this aborts (scalar only)
  double max_step = 0.0;       ///< if > 0, clamp |dx| per iteration (damping)
};

/// f(x, df) must return f(x) and store df = f'(x).
using ScalarFunction = std::function<double(double x, double& df)>;

/// Solves f(x) = 0 starting from x (updated in place).
/// Convergence is declared on |f(x)| <= tolerance.
NewtonResult newtonScalar(const ScalarFunction& f, double& x,
                          const NewtonOptions& opt = {});

/// f(x) returning residual; jac(x) returning the Jacobian matrix.
using VectorFunction = std::function<Vector(const Vector& x)>;
using JacobianFunction = std::function<Matrix(const Vector& x)>;

/// Solves F(x) = 0 (dense Jacobian, LU-based), x updated in place.
/// Convergence on ||F(x)||_inf <= tolerance.
NewtonResult newtonVector(const VectorFunction& f, const JacobianFunction& jac,
                          Vector& x, const NewtonOptions& opt = {});

}  // namespace fdtdmm
