#pragma once
/// \file matrix.h
/// Dense row-major matrix with the small set of operations required by the
/// macromodel identification and implicit solver code paths. Not a general
/// linear-algebra library: sizes are small (regression problems with a few
/// thousand rows, state matrices of order r <= ~8).

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace fdtdmm {

/// Dense real vector used throughout the library.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// Creates a matrix from nested initializer lists (rows of equal length).
  /// \throws std::invalid_argument if rows have inconsistent lengths.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Bounds-checked element access. \throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Raw storage (row-major), for tight loops.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Returns the identity matrix of dimension n.
  static Matrix identity(std::size_t n);

  /// Returns the transpose of this matrix.
  Matrix transposed() const;

  /// Matrix-vector product. \throws std::invalid_argument on size mismatch.
  Vector operator*(const Vector& x) const;

  /// Matrix-matrix product. \throws std::invalid_argument on size mismatch.
  Matrix operator*(const Matrix& rhs) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Maximum absolute entry (infinity norm of the flattened matrix).
  double maxAbs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
double norm2(const Vector& v);

/// Infinity norm of a vector.
double normInf(const Vector& v);

/// Dot product. \throws std::invalid_argument on size mismatch.
double dot(const Vector& a, const Vector& b);

/// a + s*b elementwise. \throws std::invalid_argument on size mismatch.
Vector axpy(const Vector& a, double s, const Vector& b);

}  // namespace fdtdmm
