#include "math/linear_solve.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace fdtdmm {

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) {
    throw std::invalid_argument("LuFactorization: matrix must be square");
  }
  factorInPlace();
}

void LuFactorization::factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuFactorization: matrix must be square");
  }
  lu_ = a;  // vector copy assignment: reuses storage at an unchanged dim
  try {
    factorInPlace();
  } catch (...) {
    lu_ = Matrix();
    perm_.clear();
    factored_ = false;
    throw;
  }
}

void LuFactorization::factorInPlace() {
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  // Health probes (see minAbsPivot/pivotGrowth): max|A| is scanned before
  // elimination, the pivot minimum rides the pivot search it already
  // performs, and max|U| is scanned afterwards — O(n^2) against the
  // factorization's O(n^3), so tracking stays unconditional.
  max_abs_a_ = 0.0;
  {
    const double* d = lu_.data();
    for (std::size_t i = 0; i < n * n; ++i)
      max_abs_a_ = std::max(max_abs_a_, std::abs(d[i]));
  }
  min_abs_pivot_ = 0.0;
  max_abs_u_ = 0.0;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: find the largest magnitude entry in column k.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0) throw std::runtime_error("LuFactorization: singular matrix");
    min_abs_pivot_ = k == 0 ? best : std::min(min_abs_pivot_, best);
    if (pivot != k) {
      std::swap(perm_[k], perm_[pivot]);
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
    }
    const double inv = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = lu_(r, k) * inv;
      lu_(r, k) = m;
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j)
      max_abs_u_ = std::max(max_abs_u_, std::abs(lu_(i, j)));
  factored_ = true;
}

Vector LuFactorization::solve(const Vector& b) const {
  Vector x;
  solve(b, x);
  return x;
}

void LuFactorization::solve(const Vector& b, Vector& x) const {
  if (!factored()) throw std::logic_error("LuFactorization::solve: not factored");
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LuFactorization::solve: size mismatch");
  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution (unit lower triangular).
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
}

void LuFactorization::solveTranspose(const Vector& b, Vector& x) const {
  if (!factored())
    throw std::logic_error("LuFactorization::solveTranspose: not factored");
  const std::size_t n = lu_.rows();
  if (b.size() != n)
    throw std::invalid_argument("LuFactorization::solveTranspose: size mismatch");
  // A = P^-1 L U, so A^T x = b factors as U^T w = b, L^T v = w,
  // x = P^-1 v (i.e. x[perm[i]] = v[i] — solve() applies P on entry, the
  // transpose solve applies its inverse on exit).
  x.resize(n);
  Vector v(n);
  // U^T is lower triangular with the U diagonal: forward substitution.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * v[j];
    v[i] = acc / lu_(i, i);
  }
  // L^T is unit upper triangular: backward substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = v[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(j, ii) * v[j];
    v[ii] = acc;
  }
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = v[i];
}

double LuFactorization::absDeterminant() const {
  double d = 1.0;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= std::abs(lu_(i, i));
  return d;
}

Vector solveLinear(const Matrix& a, const Vector& b) {
  return LuFactorization(a).solve(b);
}

Vector solveLeastSquares(const Matrix& a, const Vector& b, double ridge) {
  if (a.rows() != b.size()) throw std::invalid_argument("solveLeastSquares: size mismatch");
  if (a.rows() < a.cols()) throw std::invalid_argument("solveLeastSquares: underdetermined");

  // Optionally augment with sqrt(ridge)*I rows for Tikhonov regularization.
  const std::size_t m0 = a.rows();
  const std::size_t n = a.cols();
  const std::size_t m = ridge > 0.0 ? m0 + n : m0;
  Matrix r(m, n);
  Vector rhs(m, 0.0);
  for (std::size_t i = 0; i < m0; ++i) {
    for (std::size_t j = 0; j < n; ++j) r(i, j) = a(i, j);
    rhs[i] = b[i];
  }
  if (ridge > 0.0) {
    const double s = std::sqrt(ridge);
    for (std::size_t j = 0; j < n; ++j) r(m0 + j, j) = s;
  }

  // Householder QR applied in place; rhs transformed alongside.
  for (std::size_t k = 0; k < n; ++k) {
    double alpha = 0.0;
    for (std::size_t i = k; i < m; ++i) alpha += r(i, k) * r(i, k);
    alpha = std::sqrt(alpha);
    if (alpha == 0.0) throw std::runtime_error("solveLeastSquares: rank-deficient matrix");
    if (r(k, k) > 0.0) alpha = -alpha;

    // Householder vector v stored in column k below the diagonal.
    Vector v(m - k);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vnorm2 = 0.0;
    for (double x : v) vnorm2 += x * x;
    if (vnorm2 == 0.0) throw std::runtime_error("solveLeastSquares: rank-deficient matrix");

    r(k, k) = alpha;
    for (std::size_t i = k + 1; i < m; ++i) r(i, k) = 0.0;

    for (std::size_t c = k + 1; c < n; ++c) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i)
        proj += v[i - k] * (i == k ? r(k, c) : r(i, c));
      const double f = 2.0 * proj / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, c) -= f * v[i - k];
    }
    double projb = 0.0;
    for (std::size_t i = k; i < m; ++i) projb += v[i - k] * rhs[i];
    const double fb = 2.0 * projb / vnorm2;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= fb * v[i - k];
  }

  // Back substitution on the n x n upper-triangular block.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = rhs[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= r(ii, j) * x[j];
    if (r(ii, ii) == 0.0) throw std::runtime_error("solveLeastSquares: rank-deficient matrix");
    x[ii] = acc / r(ii, ii);
  }
  return x;
}

}  // namespace fdtdmm
