#pragma once
/// \file complex_lu.h
/// Complex-valued direct solvers for the frequency-domain MNA path.
///
/// The AC system A(omega) = G + j*omega*B is assembled as two real-valued
/// stamp targets (real and imaginary parts, see circuit/elements.h
/// AcStampSystem), so both solvers here factor a (re, im) matrix pair
/// rather than a native complex storage type — the existing dense Matrix
/// and CSR SparseMatrix stay the only assembly substrates in the codebase.
///
/// ComplexLu mirrors LuFactorization (linear_solve.h): dense LU with
/// partial pivoting, storage reused across re-factorizations.
///
/// ComplexSparseLu mirrors SparseLu (sparse_lu.h) entry for entry: the
/// same RCM ordering, the same gbtrf-style band storage with kl spare
/// superdiagonals, the same pattern-version-cached symbolic stage — only
/// the scalars are std::complex<double>. Because the symbolic stage is a
/// pure function of the (frequency-independent) pattern, an ordering
/// published by the transient path's SolverStateCache can seed
/// factorWithOrder here, and every frequency point of an AC sweep reuses
/// one symbolic analysis (the AcSession economy, src/freq/ac_engine.h).

#include <complex>
#include <cstdint>
#include <vector>

#include "math/matrix.h"
#include "math/sparse_matrix.h"

namespace fdtdmm {

using Complex = std::complex<double>;
using ComplexVector = std::vector<Complex>;

/// Dense complex LU with partial pivoting. Factor once, solve many
/// right-hand sides; re-factoring at an unchanged dimension reuses all
/// storage (the LuFactorization convention).
class ComplexLu {
 public:
  ComplexLu() = default;

  /// Factors A = re + j*im (both square, same dimension).
  /// \throws std::invalid_argument on shape mismatch, std::runtime_error
  ///         if A is numerically singular (the factorization is left
  ///         empty).
  void factor(const Matrix& re, const Matrix& im);

  bool factored() const { return factored_; }
  std::size_t dim() const { return n_; }

  /// Solves A x = b into x (resized; must not alias b).
  /// \throws std::invalid_argument on size mismatch, std::logic_error if
  ///         nothing has been factored.
  void solve(const ComplexVector& b, ComplexVector& x) const;

  /// Convenience allocating overload.
  ComplexVector solve(const ComplexVector& b) const;

  /// Numerical-health probes of the last successful factorization
  /// (obs/health.h), magnitudes taken as std::abs of the complex entries:
  /// smallest selected pivot modulus and element growth max|U| / max|A|.
  /// Both 0 before the first factor().
  double minAbsPivot() const { return min_abs_pivot_; }
  double pivotGrowth() const {
    return max_abs_a_ > 0.0 ? max_abs_u_ / max_abs_a_ : 0.0;
  }

 private:
  Complex& at(std::size_t r, std::size_t c) { return lu_[r * n_ + c]; }
  Complex atc(std::size_t r, std::size_t c) const { return lu_[r * n_ + c]; }

  std::size_t n_ = 0;
  ComplexVector lu_;  ///< row-major
  std::vector<std::size_t> perm_;
  bool factored_ = false;
  double min_abs_pivot_ = 0.0;
  double max_abs_a_ = 0.0;
  double max_abs_u_ = 0.0;
};

/// Banded complex LU over a CSR matrix pair sharing one pattern. See the
/// file comment: this is SparseLu with complex scalars, including the
/// band-robustness argument for partial pivoting (every structurally
/// possible pivot candidate of column j lies within kl rows of the
/// diagonal).
class ComplexSparseLu {
 public:
  ComplexSparseLu() = default;

  /// Factors A = re + j*im. Both matrices must be finalized with the SAME
  /// pattern (equal rowPtr/colIdx — the AcStampSystem writes both targets
  /// on every add, which guarantees it). Re-runs the symbolic analysis
  /// (RCM + band extents) only when a pattern version changed.
  /// \throws std::invalid_argument if either matrix is not finalized, has
  ///         dimension 0, or the patterns differ; std::runtime_error on
  ///         numeric singularity.
  void factor(const SparseMatrix& re, const SparseMatrix& im);

  /// Factors like factor(), but seeds the symbolic stage with a
  /// precomputed fill-reducing ordering (order[new] = old) instead of
  /// recomputing RCM — the symbolic-sharing hook: the pattern (and thus
  /// the ordering) of an AC system does not depend on frequency, so every
  /// frequency point (and every corner of one structure class) pays for
  /// RCM once. \throws std::invalid_argument if `order` is not
  /// dim()-sized, on top of factor()'s errors.
  void factorWithOrder(const SparseMatrix& re, const SparseMatrix& im,
                       const std::vector<std::size_t>& order);

  /// Ordering of the last symbolic analysis (order[new] = old; empty until
  /// the first factor).
  const std::vector<std::size_t>& ordering() const { return order_; }

  bool factored() const { return factored_; }
  std::size_t dim() const { return n_; }

  /// Band extents of the RCM-permuted matrix (valid after factor()).
  std::size_t lowerBandwidth() const { return kl_; }
  std::size_t upperBandwidth() const { return ku_; }

  /// Solves A x = b into x (resized; must not alias b). Allocation-free
  /// after the first call at a given dimension. Uses an internal scratch
  /// vector, so not safe for concurrent calls on one instance — AC
  /// sessions own their factorization privately (only the symbolic
  /// ordering is shared), so no caller-workspace overload is needed.
  void solve(const ComplexVector& b, ComplexVector& x) const;

  /// Convenience allocating overload.
  ComplexVector solve(const ComplexVector& b) const;

  /// Numerical-health probes of the last successful factorization, as in
  /// ComplexLu (moduli via std::abs). Both 0 before the first factor().
  double minAbsPivot() const { return min_abs_pivot_; }
  double pivotGrowth() const {
    return max_abs_a_ > 0.0 ? max_abs_u_ / max_abs_a_ : 0.0;
  }

 private:
  void analyzeWithOrder(const SparseMatrix& re, const SparseMatrix& im,
                        std::vector<std::size_t> order);
  void factorNumeric(const SparseMatrix& re, const SparseMatrix& im);
  static void checkPair(const SparseMatrix& re, const SparseMatrix& im);

  Complex& at(std::size_t i, std::size_t j) { return ab_[j * ldab_ + (i + shift_ - j)]; }
  Complex atc(std::size_t i, std::size_t j) const { return ab_[j * ldab_ + (i + shift_ - j)]; }

  std::size_t n_ = 0;
  std::size_t kl_ = 0, ku_ = 0;
  std::size_t ldab_ = 0;   ///< band-storage column height = 2*kl + ku + 1
  std::size_t shift_ = 0;  ///< row offset in a storage column = kl + ku
  std::uint64_t analyzed_re_version_ = 0;
  std::uint64_t analyzed_im_version_ = 0;
  std::vector<std::size_t> order_;  ///< order_[new] = old
  std::vector<std::size_t> pos_;    ///< pos_[old] = new
  ComplexVector ab_;                ///< band storage, column-major
  std::vector<std::size_t> piv_;
  mutable ComplexVector work_;
  bool factored_ = false;
  double min_abs_pivot_ = 0.0;
  double max_abs_a_ = 0.0;
  double max_abs_u_ = 0.0;
};

}  // namespace fdtdmm
