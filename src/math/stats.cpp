#include "math/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fdtdmm {

double rms(const Vector& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double rmsError(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("rmsError: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return a.empty() ? 0.0 : std::sqrt(acc / static_cast<double>(a.size()));
}

double nrmse(const Vector& a, const Vector& reference) {
  const MinMax mm = minMax(reference);
  const double span = mm.max - mm.min;
  if (span <= 0.0) throw std::invalid_argument("nrmse: flat reference");
  return rmsError(a, reference) / span;
}

double maxAbsError(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("maxAbsError: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

double mean(const Vector& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

MinMax minMax(const Vector& v) {
  if (v.empty()) throw std::invalid_argument("minMax: empty input");
  auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  return {*lo, *hi};
}

}  // namespace fdtdmm
