#include "math/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fdtdmm {

double rms(const Vector& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double rmsError(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("rmsError: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return a.empty() ? 0.0 : std::sqrt(acc / static_cast<double>(a.size()));
}

double nrmse(const Vector& a, const Vector& reference) {
  const MinMax mm = minMax(reference);
  const double span = mm.max - mm.min;
  if (span <= 0.0) throw std::invalid_argument("nrmse: flat reference");
  return rmsError(a, reference) / span;
}

double maxAbsError(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("maxAbsError: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

double mean(const Vector& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

MinMax minMax(const Vector& v) {
  if (v.empty()) throw std::invalid_argument("minMax: empty input");
  auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  return {*lo, *hi};
}

double stddev(const Vector& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) {
    const double d = x - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

namespace {

/// Type-7 quantile of an already-sorted sample.
double quantileSorted(const Vector& sorted, double q) {
  if (!(q >= 0.0 && q <= 1.0))
    throw std::invalid_argument("quantile: q outside [0, 1]");
  const std::size_t n = sorted.size();
  const double h = static_cast<double>(n - 1) * q;
  const std::size_t lo = static_cast<std::size_t>(h);
  if (lo + 1 >= n) return sorted[n - 1];
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

double quantile(const Vector& v, double q) {
  if (v.empty()) throw std::invalid_argument("quantile: empty input");
  Vector sorted = v;
  std::sort(sorted.begin(), sorted.end());
  return quantileSorted(sorted, q);
}

std::vector<double> quantiles(const Vector& v, const std::vector<double>& qs) {
  if (v.empty()) throw std::invalid_argument("quantiles: empty input");
  Vector sorted = v;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(quantileSorted(sorted, q));
  return out;
}

double exceedanceProbability(const Vector& v, double threshold, bool above) {
  if (v.empty())
    throw std::invalid_argument("exceedanceProbability: empty input");
  std::size_t n = 0;
  for (double x : v)
    if (above ? x > threshold : x < threshold) ++n;
  return static_cast<double>(n) / static_cast<double>(v.size());
}

double normalCdf(double x) {
  return 0.5 * std::erfc(-x * 0.7071067811865475244);  // 1/sqrt(2)
}

double normalQuantile(double p) {
  if (!(p > 0.0 && p < 1.0))
    throw std::invalid_argument("normalQuantile: p outside (0, 1)");
  // Acklam's piecewise rational approximation (|rel err| < 1.15e-9).
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5, r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement against the machine-precision CDF.
  const double e = normalCdf(x) - p;
  const double u = e * 2.506628274631000502 * std::exp(0.5 * x * x);
  return x - u / (1.0 + 0.5 * x * u);
}

}  // namespace fdtdmm
