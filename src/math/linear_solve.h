#pragma once
/// \file linear_solve.h
/// Direct linear solvers: LU with partial pivoting for square systems
/// (MNA Jacobians) and Householder-QR least squares (RBF weight fitting).

#include "math/matrix.h"

namespace fdtdmm {

/// LU factorization with partial pivoting of a square matrix.
/// Factor once, solve many right-hand sides. The transient MNA engine keeps
/// two of these alive across the whole run (base matrix + dirtied working
/// matrix) and re-factors in place, so `factor` and the two-argument `solve`
/// reuse their internal storage and perform no allocations after the first
/// call at a given dimension.
class LuFactorization {
 public:
  /// Creates an empty factorization; call factor() before solve().
  LuFactorization() = default;

  /// Factors A (square). \throws std::invalid_argument if A is not square,
  /// std::runtime_error if A is numerically singular.
  explicit LuFactorization(Matrix a);

  /// Re-factors from A, reusing internal storage when the dimension is
  /// unchanged. Same error behavior as the constructor. On a singularity
  /// error the factorization is left empty.
  void factor(const Matrix& a);

  /// True once factor() (or the factoring constructor) has succeeded.
  bool factored() const { return factored_; }

  /// Solves A x = b. \throws std::invalid_argument on size mismatch,
  /// std::logic_error if nothing has been factored yet.
  Vector solve(const Vector& b) const;

  /// Allocation-free variant: solves A x = b into `x` (resized as needed;
  /// `x` may not alias `b`). Same error behavior as solve(b).
  void solve(const Vector& b, Vector& x) const;

  /// Solves A^T x = b into `x` (resized; may not alias `b`): the same
  /// factorization run backwards (U^T forward, L^T backward, then the
  /// inverse row permutation). Const (scratch is call-local), so any
  /// number of threads may transpose-solve one shared factorization —
  /// this is what the Hager condition estimator (obs/health.h) calls on
  /// the already-cached base LU instead of refactorizing.
  void solveTranspose(const Vector& b, Vector& x) const;

  std::size_t dim() const { return lu_.rows(); }

  /// |det(A)| growth indicator: product of |U_ii|. Useful for
  /// conditioning diagnostics in tests.
  double absDeterminant() const;

  /// Numerical-health probes of the last successful factorization
  /// (obs/health.h): the smallest pivot magnitude selected by partial
  /// pivoting, and the element-growth factor max|U| / max|A| (close to 1
  /// for well-behaved systems; large growth flags instability). Both are
  /// 0 before the first factor().
  double minAbsPivot() const { return min_abs_pivot_; }
  double pivotGrowth() const {
    return max_abs_a_ > 0.0 ? max_abs_u_ / max_abs_a_ : 0.0;
  }

 private:
  void factorInPlace();

  Matrix lu_;
  std::vector<std::size_t> perm_;
  bool factored_ = false;
  double min_abs_pivot_ = 0.0;
  double max_abs_a_ = 0.0;
  double max_abs_u_ = 0.0;
};

/// Solves the square system A x = b by LU with partial pivoting.
/// \throws std::runtime_error if A is singular.
Vector solveLinear(const Matrix& a, const Vector& b);

/// Solves min_x ||A x - b||_2 by Householder QR. Requires rows >= cols.
/// \param ridge optional Tikhonov regularization: solves the augmented
///        system [A; sqrt(ridge) I] x = [b; 0]; ridge = 0 disables it.
/// \throws std::invalid_argument on size mismatch, std::runtime_error if
///         A is rank-deficient and ridge == 0.
Vector solveLeastSquares(const Matrix& a, const Vector& b, double ridge = 0.0);

}  // namespace fdtdmm
