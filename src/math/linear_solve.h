#pragma once
/// \file linear_solve.h
/// Direct linear solvers: LU with partial pivoting for square systems
/// (MNA Jacobians) and Householder-QR least squares (RBF weight fitting).

#include "math/matrix.h"

namespace fdtdmm {

/// LU factorization with partial pivoting of a square matrix.
/// Factor once, solve many right-hand sides (used by the MNA engine when the
/// Jacobian sparsity/values are reused across Newton iterations).
class LuFactorization {
 public:
  /// Factors A (square). \throws std::invalid_argument if A is not square,
  /// std::runtime_error if A is numerically singular.
  explicit LuFactorization(Matrix a);

  /// Solves A x = b. \throws std::invalid_argument on size mismatch.
  Vector solve(const Vector& b) const;

  std::size_t dim() const { return lu_.rows(); }

  /// |det(A)| growth indicator: product of |U_ii|. Useful for
  /// conditioning diagnostics in tests.
  double absDeterminant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

/// Solves the square system A x = b by LU with partial pivoting.
/// \throws std::runtime_error if A is singular.
Vector solveLinear(const Matrix& a, const Vector& b);

/// Solves min_x ||A x - b||_2 by Householder QR. Requires rows >= cols.
/// \param ridge optional Tikhonov regularization: solves the augmented
///        system [A; sqrt(ridge) I] x = [b; 0]; ridge = 0 disables it.
/// \throws std::invalid_argument on size mismatch, std::runtime_error if
///         A is rank-deficient and ridge == 0.
Vector solveLeastSquares(const Matrix& a, const Vector& b, double ridge = 0.0);

}  // namespace fdtdmm
