#pragma once
/// \file rng.h
/// Deterministic pseudo-random generator (SplitMix64). All stochastic parts
/// of the library (identification excitations, k-means init, property tests,
/// Monte Carlo sweep axes) use this generator so results are reproducible
/// across platforms.
///
/// Two usage styles:
///   - Sequential: construct an Rng from a seed and draw from it. Fine when
///     one consumer owns the whole stream.
///   - Splittable (counter-based): splitStream(seed, stream, draw) derives a
///     statistically independent generator from the triple alone. Stochastic
///     sweep axes use this so that draw k of parameter p is a pure function
///     of (seed, p, k) — independent of corner-expansion order, worker
///     count, or how many other draws happened first.
///
/// The splitStream mapping is part of the reproducibility contract: pinned
/// by test_rng_streams.cpp, do not change it without renaming it.

#include <cmath>
#include <cstdint>
#include <string>

namespace fdtdmm {

/// SplitMix64: tiny, fast, full-period 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in the OPEN interval (0, 1): never exactly 0 or 1, so
  /// inverse-CDF transforms (normalQuantile, log) stay finite.
  double uniformOpen() {
    return (static_cast<double>(next() >> 11) + 0.5) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Standard normal variate (Box-Muller; uses two uniforms per pair).
  double normal();

 private:
  std::uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

/// SplitMix64's output finalizer as a standalone avalanche hash: every
/// input bit affects every output bit. Building block for splitStream.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a 64-bit hash of a string: stable, portable stream identifiers from
/// human-readable names (e.g. "axis/param" for a stochastic sweep axis).
inline std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Counter-based stream splitting: derives an Rng whose state is a pure
/// function of (seed, stream, draw). Distinct triples give statistically
/// independent generators (three rounds of mix64 with distinct odd tweaks —
/// no (seed, stream, draw) arithmetic coincidence can collide states without
/// inverting the avalanche). Use one `draw` value per logical random draw
/// and take a single variate from the returned generator; that makes the
/// draw independent of evaluation order.
inline Rng splitStream(std::uint64_t seed, std::uint64_t stream,
                       std::uint64_t draw) {
  std::uint64_t h = mix64(seed ^ 0x9e3779b97f4a7c15ULL);
  h = mix64(h ^ stream ^ 0xbf58476d1ce4e5b9ULL);
  h = mix64(h ^ draw ^ 0x94d049bb133111ebULL);
  return Rng(h);
}

inline double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  // Box-Muller with rejection of u == 0.
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  const double v = uniform();
  const double r = std::sqrt(-2.0 * std::log(u));
  constexpr double two_pi = 6.283185307179586476925286766559;
  spare_ = r * std::sin(two_pi * v);
  have_spare_ = true;
  return r * std::cos(two_pi * v);
}

}  // namespace fdtdmm
