#pragma once
/// \file rng.h
/// Deterministic pseudo-random generator (SplitMix64). All stochastic parts
/// of the library (identification excitations, k-means init, property tests)
/// use this generator so results are reproducible across platforms.

#include <cmath>
#include <cstdint>

namespace fdtdmm {

/// SplitMix64: tiny, fast, full-period 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Standard normal variate (Box-Muller; uses two uniforms per pair).
  double normal();

 private:
  std::uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

inline double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  // Box-Muller with rejection of u == 0.
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  const double v = uniform();
  const double r = std::sqrt(-2.0 * std::log(u));
  constexpr double two_pi = 6.283185307179586476925286766559;
  spare_ = r * std::sin(two_pi * v);
  have_spare_ = true;
  return r * std::cos(two_pi * v);
}

}  // namespace fdtdmm
