#pragma once
/// \file spectral.h
/// Spectral radius estimation for discrete-time stability checks
/// (Section 3.1 of the paper: the resampled system is stable iff all
/// eigenvalues of its state update lie inside the unit circle).

#include <cstdint>

#include "math/matrix.h"

namespace fdtdmm {

/// Estimates the spectral radius rho(A) of a square matrix by normalized
/// power iteration with several random restarts (handles complex-conjugate
/// dominant pairs by tracking two-step growth).
/// \throws std::invalid_argument if A is not square or empty.
double spectralRadius(const Matrix& a, int iterations = 200,
                      int restarts = 4, std::uint64_t seed = 1234);

/// Builds the companion (controllable canonical) matrix of the scalar
/// difference equation y_m = sum_{k=1..r} a_k y_{m-k}; its eigenvalues are
/// the model poles. Used to verify |lambda| < 1 for identified linear
/// submodels before resampling (the premise of the paper's Eq. 14).
/// \throws std::invalid_argument if coefficients are empty.
Matrix companionMatrix(const Vector& a_coeffs);

}  // namespace fdtdmm
