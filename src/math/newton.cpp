#include "math/newton.h"

#include <algorithm>
#include <cmath>

#include "math/linear_solve.h"

namespace fdtdmm {

NewtonResult newtonScalar(const ScalarFunction& f, double& x, const NewtonOptions& opt) {
  NewtonResult result;
  double df = 0.0;
  double fx = f(x, df);
  result.residual = std::abs(fx);
  for (int it = 0; it < opt.max_iterations; ++it) {
    if (std::abs(fx) <= opt.tolerance) {
      result.converged = true;
      result.iterations = it;
      result.residual = std::abs(fx);
      return result;
    }
    if (std::abs(df) < opt.min_derivative) break;
    double dx = -fx / df;
    if (opt.max_step > 0.0) dx = std::clamp(dx, -opt.max_step, opt.max_step);
    x += dx;
    fx = f(x, df);
    result.iterations = it + 1;
    result.residual = std::abs(fx);
  }
  result.converged = std::abs(fx) <= opt.tolerance;
  return result;
}

NewtonResult newtonVector(const VectorFunction& f, const JacobianFunction& jac,
                          Vector& x, const NewtonOptions& opt) {
  NewtonResult result;
  Vector fx = f(x);
  result.residual = normInf(fx);
  for (int it = 0; it < opt.max_iterations; ++it) {
    if (result.residual <= opt.tolerance) {
      result.converged = true;
      result.iterations = it;
      return result;
    }
    Vector dx = solveLinear(jac(x), fx);
    double scale = 1.0;
    if (opt.max_step > 0.0) {
      const double m = normInf(dx);
      if (m > opt.max_step) scale = opt.max_step / m;
    }
    for (std::size_t i = 0; i < x.size(); ++i) x[i] -= scale * dx[i];
    fx = f(x);
    result.iterations = it + 1;
    result.residual = normInf(fx);
  }
  result.converged = result.residual <= opt.tolerance;
  return result;
}

}  // namespace fdtdmm
