#include "math/sparse_matrix.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>

namespace fdtdmm {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}  // namespace

std::uint64_t SparseMatrix::nextVersion() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

void SparseMatrix::reset(std::size_t n) {
  n_ = n;
  finalized_ = false;
  version_ = 0;
  building_.clear();
  overflow_.clear();
  row_ptr_.clear();
  col_idx_.clear();
  values_.clear();
}

void SparseMatrix::add(std::size_t r, std::size_t c, double v) {
  if (r >= n_ || c >= n_)
    throw std::out_of_range("SparseMatrix::add: index out of range");
  if (!finalized_) {
    building_.push_back({r, c, v});
    return;
  }
  const std::size_t k = find(r, c);
  if (k != kNpos) {
    values_[k] += v;
  } else {
    overflow_.push_back({r, c, v});
  }
}

std::size_t SparseMatrix::find(std::size_t r, std::size_t c) const {
  const auto first = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto last = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return kNpos;
  return static_cast<std::size_t>(it - col_idx_.begin());
}

void SparseMatrix::compile(std::vector<Triplet>& entries) {
  std::sort(entries.begin(), entries.end(), [](const Triplet& a, const Triplet& b) {
    return a.r != b.r ? a.r < b.r : a.c < b.c;
  });
  row_ptr_.assign(n_ + 1, 0);
  col_idx_.clear();
  values_.clear();
  col_idx_.reserve(entries.size());
  values_.reserve(entries.size());
  for (std::size_t k = 0; k < entries.size();) {
    const std::size_t r = entries[k].r;
    const std::size_t c = entries[k].c;
    double sum = 0.0;
    for (; k < entries.size() && entries[k].r == r && entries[k].c == c; ++k)
      sum += entries[k].v;
    row_ptr_[r + 1] += 1;
    col_idx_.push_back(c);
    values_.push_back(sum);
  }
  for (std::size_t r = 0; r < n_; ++r) row_ptr_[r + 1] += row_ptr_[r];
  version_ = nextVersion();
}

void SparseMatrix::finalize() {
  if (finalized_) throw std::logic_error("SparseMatrix::finalize: already finalized");
  compile(building_);
  building_.clear();
  building_.shrink_to_fit();
  finalized_ = true;
}

void SparseMatrix::mergeOverflow() {
  if (overflow_.empty()) return;
  std::vector<Triplet> entries;
  entries.reserve(nonZeros() + overflow_.size());
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      entries.push_back({r, col_idx_[k], values_[k]});
  entries.insert(entries.end(), overflow_.begin(), overflow_.end());
  overflow_.clear();
  compile(entries);
}

void SparseMatrix::adoptPatternOf(const SparseMatrix& other) {
  if (!finalized_ || !other.finalized_)
    throw std::logic_error("SparseMatrix::adoptPatternOf: both matrices must be finalized");
  if (n_ != other.n_)
    throw std::invalid_argument("SparseMatrix::adoptPatternOf: dimension mismatch");
  if (version_ == other.version_) return;  // identical pattern already
  std::vector<double> new_values(other.nonZeros(), 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t j = other.find(r, col_idx_[k]);
      if (j == kNpos)
        throw std::invalid_argument(
            "SparseMatrix::adoptPatternOf: other pattern does not cover this one");
      new_values[j] = values_[k];
    }
  }
  row_ptr_ = other.row_ptr_;
  col_idx_ = other.col_idx_;
  values_ = std::move(new_values);
  version_ = other.version_;
}

void SparseMatrix::setValuesFrom(const SparseMatrix& base) {
  if (!finalized_ || version_ != base.version_)
    throw std::logic_error("SparseMatrix::setValuesFrom: pattern mismatch");
  std::copy(base.values_.begin(), base.values_.end(), values_.begin());
}

void SparseMatrix::clearValues() {
  std::fill(values_.begin(), values_.end(), 0.0);
  overflow_.clear();
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  if (!finalized_) throw std::logic_error("SparseMatrix::at: not finalized");
  if (r >= n_ || c >= n_)
    throw std::out_of_range("SparseMatrix::at: index out of range");
  const std::size_t k = find(r, c);
  return k == kNpos ? 0.0 : values_[k];
}

Vector SparseMatrix::multiply(const Vector& x) const {
  if (!finalized_) throw std::logic_error("SparseMatrix::multiply: not finalized");
  if (x.size() != n_)
    throw std::invalid_argument("SparseMatrix::multiply: size mismatch");
  Vector y(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      sum += values_[k] * x[col_idx_[k]];
    y[r] = sum;
  }
  return y;
}

Matrix SparseMatrix::toDense() const {
  if (!finalized_) throw std::logic_error("SparseMatrix::toDense: not finalized");
  Matrix m(n_, n_);
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      m(r, col_idx_[k]) += values_[k];
  return m;
}

}  // namespace fdtdmm
