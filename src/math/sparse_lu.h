#pragma once
/// \file sparse_lu.h
/// Direct solver for CSR systems from the sparse MNA path: a fill-reducing
/// reverse Cuthill-McKee ordering followed by banded LU with partial
/// pivoting (LAPACK gbtrf-style band storage with kl spare superdiagonals
/// for pivot growth).
///
/// Why banded + RCM rather than a general sparse LU: segmented RLGC board
/// models produce chain-structured graphs whose RCM-permuted matrices have
/// tiny bandwidth (a handful of diagonals regardless of segment count), so
/// factorization is O(n b^2) and each substitution O(n b) — versus O(n^3) /
/// O(n^2) dense. Partial pivoting within the band is exactly as robust as
/// dense partial pivoting here, because every structurally possible pivot
/// candidate of column j lies within kl rows of the diagonal by the band's
/// definition. On a pathological (dense-ish) pattern the band degrades
/// towards n and the solver remains correct, merely not faster.
///
/// The symbolic stage (ordering + band extents + storage) is cached by the
/// matrix's pattern-version stamp: refactoring a matrix with an unchanged
/// pattern reuses it and performs no allocations.

#include <cstdint>
#include <vector>

#include "math/sparse_matrix.h"

namespace fdtdmm {

/// Reverse Cuthill-McKee ordering of a (structurally symmetrized) CSR
/// pattern. Returns `order` with order[new_index] = old_index; handles
/// disconnected components (each seeded at a minimum-degree vertex).
std::vector<std::size_t> reverseCuthillMcKee(const SparseMatrix& a);

/// LU factorization of a finalized SparseMatrix. Factor once, solve many
/// right-hand sides; re-factoring with the same pattern reuses all storage.
class SparseLu {
 public:
  SparseLu() = default;

  /// Factors A. Re-runs the symbolic analysis only when A's pattern version
  /// differs from the last factored one. \throws std::invalid_argument if A
  /// is not finalized or has dimension 0, std::runtime_error if A is
  /// numerically singular (the factorization is left empty).
  void factor(const SparseMatrix& a);

  /// Factors A like factor(), but seeds the symbolic stage with a
  /// precomputed fill-reducing ordering (order[new] = old) instead of
  /// recomputing RCM — the cross-run symbolic-sharing hook: an ordering
  /// computed from an identical pattern yields a bit-identical
  /// factorization, so runs of one structure class pay for RCM once.
  /// \throws std::invalid_argument if `order` is not dim()-sized (on top of
  ///         factor()'s errors). An ordering from a *different* pattern is
  ///         still a valid permutation (the result stays correct, merely
  ///         not band-optimal), but then the sharing key was wrong.
  void factorWithOrder(const SparseMatrix& a, const std::vector<std::size_t>& order);

  /// Ordering of the last symbolic analysis (order[new] = old; empty until
  /// the first factor). Publishable to other instances via factorWithOrder.
  const std::vector<std::size_t>& ordering() const { return order_; }

  bool factored() const { return factored_; }
  std::size_t dim() const { return n_; }

  /// Band extents of the RCM-permuted matrix (valid after factor()).
  std::size_t lowerBandwidth() const { return kl_; }
  std::size_t upperBandwidth() const { return ku_; }

  /// Solves A x = b into x (resized; must not alias b). Allocation-free
  /// after the first call at a given dimension. NOT safe for concurrent
  /// calls on one instance (uses an internal scratch vector); concurrent
  /// sharers use the caller-workspace overload below.
  /// \throws std::invalid_argument on size mismatch, std::logic_error if
  ///         nothing has been factored.
  void solve(const Vector& b, Vector& x) const;

  /// Thread-safe solve into caller storage: identical numerics to
  /// solve(b, x), but the permutation/substitution scratch lives in `work`
  /// (resized; must alias neither b nor x), so any number of threads can
  /// solve against one shared factorization concurrently — the enabling
  /// detail of cross-run numeric-base sharing.
  void solve(const Vector& b, Vector& x, Vector& work) const;

  /// Convenience allocating overload.
  Vector solve(const Vector& b) const;

  /// Solves A^T x = b into x: the banded factorization applied backwards
  /// (U^T forward, then the L columns and row interchanges in reverse —
  /// the gbtrs TRANS='T' order), wrapped in the same RCM permutation as
  /// solve() (transposing commutes with the symmetric reordering). Used by
  /// the Hager condition estimator (obs/health.h) against already-cached
  /// factorizations. Same aliasing/threading contract as solve(): the
  /// two-argument form uses the internal scratch, the `work` overload is
  /// safe against a concurrently shared factorization.
  void solveTranspose(const Vector& b, Vector& x) const;
  void solveTranspose(const Vector& b, Vector& x, Vector& work) const;

  /// Numerical-health probes of the last successful factorization (see
  /// LuFactorization): smallest selected pivot magnitude and band element
  /// growth max|U| / max|A|. Both 0 before the first factor().
  double minAbsPivot() const { return min_abs_pivot_; }
  double pivotGrowth() const {
    return max_abs_a_ > 0.0 ? max_abs_u_ / max_abs_a_ : 0.0;
  }

 private:
  void analyze(const SparseMatrix& a);
  void analyzeWithOrder(const SparseMatrix& a, std::vector<std::size_t> order);
  void factorNumeric(const SparseMatrix& a);

  double& at(std::size_t i, std::size_t j) { return ab_[j * ldab_ + (i + shift_ - j)]; }
  double atc(std::size_t i, std::size_t j) const { return ab_[j * ldab_ + (i + shift_ - j)]; }

  std::size_t n_ = 0;
  std::size_t kl_ = 0, ku_ = 0;
  std::size_t ldab_ = 0;   ///< band-storage column height = 2*kl + ku + 1
  std::size_t shift_ = 0;  ///< row offset in a storage column = kl + ku
  std::uint64_t analyzed_version_ = 0;
  std::vector<std::size_t> order_;  ///< order_[new] = old
  std::vector<std::size_t> pos_;    ///< pos_[old] = new
  std::vector<double> ab_;          ///< band storage, column-major
  std::vector<std::size_t> piv_;
  mutable Vector work_;
  bool factored_ = false;
  double min_abs_pivot_ = 0.0;
  double max_abs_a_ = 0.0;
  double max_abs_u_ = 0.0;
};

}  // namespace fdtdmm
