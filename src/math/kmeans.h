#pragma once
/// \file kmeans.h
/// Lloyd's k-means with k-means++ seeding. Used to place Gaussian RBF
/// centers in the regressor space during macromodel identification
/// (Section 2 of the paper; the identification procedure of refs [6-8]).

#include <cstdint>
#include <vector>

#include "math/matrix.h"

namespace fdtdmm {

/// Result of a k-means run.
struct KMeansResult {
  std::vector<Vector> centers;       ///< k cluster centers
  std::vector<std::size_t> labels;   ///< per-point cluster index
  double inertia = 0.0;              ///< sum of squared distances to centers
  int iterations = 0;                ///< Lloyd iterations executed
};

/// Options for kMeans().
struct KMeansOptions {
  int max_iterations = 100;
  double tolerance = 1e-10;  ///< stop when center movement^2 falls below this
  std::uint64_t seed = 42;
};

/// Clusters `points` (all of equal dimension) into k clusters.
/// \throws std::invalid_argument if points is empty, dimensions differ, or
///         k == 0 or k > points.size().
KMeansResult kMeans(const std::vector<Vector>& points, std::size_t k,
                    const KMeansOptions& opt = {});

}  // namespace fdtdmm
