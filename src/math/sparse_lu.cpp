#include "math/sparse_lu.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fdtdmm {

std::vector<std::size_t> reverseCuthillMcKee(const SparseMatrix& a) {
  if (!a.finalized())
    throw std::invalid_argument("reverseCuthillMcKee: matrix not finalized");
  const std::size_t n = a.dim();
  // Structurally symmetrized adjacency (pattern of A + A^T, no diagonal).
  std::vector<std::vector<std::size_t>> adj(n);
  const auto& row_ptr = a.rowPtr();
  const auto& col_idx = a.colIdx();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const std::size_t c = col_idx[k];
      if (c == r) continue;
      adj[r].push_back(c);
      adj[c].push_back(r);
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }

  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> queue;
  std::size_t head = 0;
  auto degreeLess = [&](std::size_t u, std::size_t v) {
    return adj[u].size() != adj[v].size() ? adj[u].size() < adj[v].size() : u < v;
  };
  while (order.size() < n) {
    // Seed the next component at a minimum-degree unvisited vertex — a
    // cheap stand-in for a pseudo-peripheral start that works well on the
    // chain-like MNA graphs this solver targets.
    std::size_t seed = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (!visited[v] && (seed == n || degreeLess(v, seed))) seed = v;
    }
    visited[seed] = true;
    queue.push_back(seed);
    while (head < queue.size()) {
      const std::size_t u = queue[head++];
      order.push_back(u);
      std::size_t first_new = queue.size();
      for (std::size_t v : adj[u]) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
      std::sort(queue.begin() + static_cast<std::ptrdiff_t>(first_new), queue.end(),
                degreeLess);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

void SparseLu::analyze(const SparseMatrix& a) {
  analyzeWithOrder(a, reverseCuthillMcKee(a));
}

void SparseLu::analyzeWithOrder(const SparseMatrix& a, std::vector<std::size_t> order) {
  n_ = a.dim();
  order_ = std::move(order);
  pos_.assign(n_, 0);
  for (std::size_t k = 0; k < n_; ++k) pos_[order_[k]] = k;

  kl_ = ku_ = 0;
  const auto& row_ptr = a.rowPtr();
  const auto& col_idx = a.colIdx();
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t i = pos_[r];
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const std::size_t j = pos_[col_idx[k]];
      if (i > j) kl_ = std::max(kl_, i - j);
      if (j > i) ku_ = std::max(ku_, j - i);
    }
  }
  ldab_ = 2 * kl_ + ku_ + 1;  // kl spare superdiagonals absorb pivot growth
  shift_ = kl_ + ku_;
  ab_.assign(ldab_ * n_, 0.0);
  piv_.assign(n_, 0);
  analyzed_version_ = a.patternVersion();
}

void SparseLu::factor(const SparseMatrix& a) {
  if (!a.finalized()) throw std::invalid_argument("SparseLu::factor: matrix not finalized");
  if (a.dim() == 0) throw std::invalid_argument("SparseLu::factor: empty matrix");
  factored_ = false;
  if (a.dim() != n_ || a.patternVersion() != analyzed_version_) analyze(a);
  factorNumeric(a);
}

void SparseLu::factorWithOrder(const SparseMatrix& a,
                               const std::vector<std::size_t>& order) {
  if (!a.finalized()) throw std::invalid_argument("SparseLu::factor: matrix not finalized");
  if (a.dim() == 0) throw std::invalid_argument("SparseLu::factor: empty matrix");
  if (order.size() != a.dim())
    throw std::invalid_argument("SparseLu::factorWithOrder: ordering size mismatch");
  factored_ = false;
  if (a.dim() != n_ || a.patternVersion() != analyzed_version_ || order_ != order)
    analyzeWithOrder(a, order);
  factorNumeric(a);
}

void SparseLu::factorNumeric(const SparseMatrix& a) {
  // Scatter the permuted matrix into band storage.
  std::fill(ab_.begin(), ab_.end(), 0.0);
  const auto& row_ptr = a.rowPtr();
  const auto& col_idx = a.colIdx();
  const auto& values = a.values();
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t i = pos_[r];
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
      at(i, pos_[col_idx[k]]) += values[k];
  }

  // Health probes (minAbsPivot/pivotGrowth): the band holds exactly the
  // permuted A right after the scatter, so one pass gives max|A|; the
  // pivot minimum rides the pivot search below and max|U| is scanned from
  // the upper band afterwards. O(n * band) — free next to the O(n b^2)
  // elimination.
  max_abs_a_ = 0.0;
  for (double v : ab_) max_abs_a_ = std::max(max_abs_a_, std::abs(v));
  min_abs_pivot_ = 0.0;
  max_abs_u_ = 0.0;

  // Banded LU with partial pivoting (unblocked gbtrf). For column j the
  // pivot search spans rows j..j+kl — by construction of kl every
  // structurally nonzero candidate — and row swaps touch only columns
  // j..j+kl+ku, which all lie inside the widened band.
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t i_max = std::min(n_ - 1, j + kl_);
    std::size_t ip = j;
    double p_abs = std::abs(at(j, j));
    for (std::size_t i = j + 1; i <= i_max; ++i) {
      const double v = std::abs(at(i, j));
      if (v > p_abs) {
        p_abs = v;
        ip = i;
      }
    }
    if (p_abs == 0.0) throw std::runtime_error("SparseLu::factor: singular matrix");
    min_abs_pivot_ = j == 0 ? p_abs : std::min(min_abs_pivot_, p_abs);
    piv_[j] = ip;
    const std::size_t c_max = std::min(n_ - 1, j + kl_ + ku_);
    if (ip != j) {
      for (std::size_t c = j; c <= c_max; ++c) std::swap(at(j, c), at(ip, c));
    }
    const double pivot = at(j, j);
    for (std::size_t i = j + 1; i <= i_max; ++i) {
      const double l = at(i, j) / pivot;
      at(i, j) = l;
      if (l == 0.0) continue;
      for (std::size_t c = j + 1; c <= c_max; ++c) at(i, c) -= l * at(j, c);
    }
  }
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t i_min = j > kl_ + ku_ ? j - kl_ - ku_ : 0;
    for (std::size_t i = i_min; i <= j; ++i)
      max_abs_u_ = std::max(max_abs_u_, std::abs(atc(i, j)));
  }
  factored_ = true;
}

void SparseLu::solve(const Vector& b, Vector& x) const { solve(b, x, work_); }

void SparseLu::solve(const Vector& b, Vector& x, Vector& work) const {
  if (!factored_) throw std::logic_error("SparseLu::solve: not factored");
  if (b.size() != n_) throw std::invalid_argument("SparseLu::solve: size mismatch");
  work.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) work[k] = b[order_[k]];
  // Forward: apply pivots interleaved with the L columns (gbtrs order).
  for (std::size_t j = 0; j < n_; ++j) {
    if (piv_[j] != j) std::swap(work[j], work[piv_[j]]);
    const double yj = work[j];
    if (yj == 0.0) continue;
    const std::size_t i_max = std::min(n_ - 1, j + kl_);
    for (std::size_t i = j + 1; i <= i_max; ++i) work[i] -= atc(i, j) * yj;
  }
  // Backward: U has bandwidth ku + kl after pivot growth.
  for (std::size_t j = n_; j-- > 0;) {
    const double yj = work[j] / atc(j, j);
    work[j] = yj;
    if (yj == 0.0) continue;
    const std::size_t i_min = j > kl_ + ku_ ? j - kl_ - ku_ : 0;
    for (std::size_t i = i_min; i < j; ++i) work[i] -= atc(i, j) * yj;
  }
  x.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) x[order_[k]] = work[k];
}

Vector SparseLu::solve(const Vector& b) const {
  Vector x;
  solve(b, x);
  return x;
}

void SparseLu::solveTranspose(const Vector& b, Vector& x) const {
  solveTranspose(b, x, work_);
}

void SparseLu::solveTranspose(const Vector& b, Vector& x, Vector& work) const {
  if (!factored_) throw std::logic_error("SparseLu::solveTranspose: not factored");
  if (b.size() != n_)
    throw std::invalid_argument("SparseLu::solveTranspose: size mismatch");
  // The RCM permutation is symmetric (rows and columns reordered alike),
  // so the transpose of the permuted matrix is the permuted transpose:
  // the same order_ wrapping as solve() applies.
  work.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) work[k] = b[order_[k]];
  // U^T z = b: U's band column j reaches up to kl + ku rows above the
  // diagonal, so U^T's forward substitution gathers from that range.
  for (std::size_t j = 0; j < n_; ++j) {
    double acc = work[j];
    const std::size_t i_min = j > kl_ + ku_ ? j - kl_ - ku_ : 0;
    for (std::size_t i = i_min; i < j; ++i) acc -= atc(i, j) * work[i];
    work[j] = acc / atc(j, j);
  }
  // Undo the interleaved L_j / P_j factors in reverse (gbtrs TRANS='T'):
  // apply L_j^T's inverse (gather the multipliers of column j), then the
  // row interchange of step j.
  for (std::size_t j = n_; j-- > 0;) {
    const std::size_t i_max = std::min(n_ - 1, j + kl_);
    double acc = work[j];
    for (std::size_t i = j + 1; i <= i_max; ++i) acc -= atc(i, j) * work[i];
    work[j] = acc;
    if (piv_[j] != j) std::swap(work[j], work[piv_[j]]);
  }
  x.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) x[order_[k]] = work[k];
}

}  // namespace fdtdmm
