#include "math/spectral.h"

#include <cmath>
#include <stdexcept>

#include "math/rng.h"

namespace fdtdmm {

double spectralRadius(const Matrix& a, int iterations, int restarts,
                      std::uint64_t seed) {
  if (a.rows() == 0 || a.rows() != a.cols())
    throw std::invalid_argument("spectralRadius: matrix must be square and non-empty");
  const std::size_t n = a.rows();
  Rng rng(seed);
  double best = 0.0;
  for (int r = 0; r < restarts; ++r) {
    Vector x(n);
    for (double& v : x) v = rng.normal();
    double nx = norm2(x);
    if (nx == 0.0) continue;
    for (double& v : x) v /= nx;

    // Track growth over pairs of steps: for a complex-conjugate dominant
    // pair the one-step ratio oscillates, but ||A^2 x|| / ||x|| converges
    // to rho^2.
    double rho = 0.0;
    for (int it = 0; it < iterations; ++it) {
      Vector y = a * x;
      Vector z = a * y;
      const double nz = norm2(z);
      if (nz == 0.0) {
        rho = 0.0;
        break;
      }
      rho = std::sqrt(nz);  // since ||x|| == 1
      for (std::size_t i = 0; i < n; ++i) x[i] = z[i] / nz;
    }
    best = std::max(best, rho);
  }
  return best;
}

Matrix companionMatrix(const Vector& a_coeffs) {
  if (a_coeffs.empty()) throw std::invalid_argument("companionMatrix: empty coefficients");
  const std::size_t r = a_coeffs.size();
  Matrix c(r, r);
  for (std::size_t j = 0; j < r; ++j) c(0, j) = a_coeffs[j];
  for (std::size_t i = 1; i < r; ++i) c(i, i - 1) = 1.0;
  return c;
}

}  // namespace fdtdmm
