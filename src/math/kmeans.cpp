#include "math/kmeans.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/rng.h"

namespace fdtdmm {

namespace {

double squaredDistance(const Vector& a, const Vector& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

KMeansResult kMeans(const std::vector<Vector>& points, std::size_t k,
                    const KMeansOptions& opt) {
  if (points.empty()) throw std::invalid_argument("kMeans: no points");
  if (k == 0 || k > points.size())
    throw std::invalid_argument("kMeans: invalid cluster count");
  const std::size_t dim = points.front().size();
  for (const auto& p : points) {
    if (p.size() != dim) throw std::invalid_argument("kMeans: inconsistent dimensions");
  }

  Rng rng(opt.seed);
  KMeansResult result;
  result.centers.reserve(k);

  // k-means++ seeding: first center uniform, the rest proportional to D^2.
  result.centers.push_back(points[rng.below(points.size())]);
  std::vector<double> d2(points.size(), std::numeric_limits<double>::max());
  while (result.centers.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], squaredDistance(points[i], result.centers.back()));
      total += d2[i];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.uniform() * total;
      for (std::size_t i = 0; i < points.size(); ++i) {
        target -= d2[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.below(points.size());
    }
    result.centers.push_back(points[chosen]);
  }

  result.labels.assign(points.size(), 0);
  for (int it = 0; it < opt.max_iterations; ++it) {
    result.iterations = it + 1;
    // Assignment step.
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squaredDistance(points[i], result.centers[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.labels[i] = best_c;
    }
    // Update step.
    std::vector<Vector> sums(k, Vector(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = result.labels[i];
      ++counts[c];
      for (std::size_t j = 0; j < dim; ++j) sums[c][j] += points[i][j];
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster at a random point.
        sums[c] = points[rng.below(points.size())];
        counts[c] = 1;
      }
      for (std::size_t j = 0; j < dim; ++j) sums[c][j] /= static_cast<double>(counts[c]);
      movement += squaredDistance(sums[c], result.centers[c]);
      result.centers[c] = std::move(sums[c]);
    }
    if (movement < opt.tolerance) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia += squaredDistance(points[i], result.centers[result.labels[i]]);
  }
  return result;
}

}  // namespace fdtdmm
