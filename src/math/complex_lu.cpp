#include "math/complex_lu.h"

#include <algorithm>
#include <stdexcept>

#include "math/sparse_lu.h"

namespace fdtdmm {

void ComplexLu::factor(const Matrix& re, const Matrix& im) {
  if (re.rows() != re.cols() || im.rows() != im.cols() ||
      re.rows() != im.rows() || re.rows() == 0)
    throw std::invalid_argument("ComplexLu::factor: shape mismatch");
  factored_ = false;
  n_ = re.rows();
  lu_.assign(n_ * n_, Complex(0.0, 0.0));
  perm_.resize(n_);
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t c = 0; c < n_; ++c) at(r, c) = Complex(re(r, c), im(r, c));

  // Health probes (minAbsPivot/pivotGrowth): max|A| before elimination,
  // pivot minimum from the search below, max|U| scanned afterwards —
  // O(n^2) beside the O(n^3) factorization.
  max_abs_a_ = 0.0;
  for (const Complex& v : lu_) max_abs_a_ = std::max(max_abs_a_, std::abs(v));
  min_abs_pivot_ = 0.0;
  max_abs_u_ = 0.0;

  for (std::size_t j = 0; j < n_; ++j) {
    std::size_t ip = j;
    double p_abs = std::abs(atc(j, j));
    for (std::size_t i = j + 1; i < n_; ++i) {
      const double v = std::abs(atc(i, j));
      if (v > p_abs) {
        p_abs = v;
        ip = i;
      }
    }
    if (p_abs == 0.0) throw std::runtime_error("ComplexLu::factor: singular matrix");
    min_abs_pivot_ = j == 0 ? p_abs : std::min(min_abs_pivot_, p_abs);
    perm_[j] = ip;
    if (ip != j) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(at(j, c), at(ip, c));
    }
    const Complex pivot = atc(j, j);
    for (std::size_t i = j + 1; i < n_; ++i) {
      const Complex l = atc(i, j) / pivot;
      at(i, j) = l;
      if (l == Complex(0.0, 0.0)) continue;
      for (std::size_t c = j + 1; c < n_; ++c) at(i, c) -= l * atc(j, c);
    }
  }
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = i; j < n_; ++j)
      max_abs_u_ = std::max(max_abs_u_, std::abs(atc(i, j)));
  factored_ = true;
}

void ComplexLu::solve(const ComplexVector& b, ComplexVector& x) const {
  if (!factored_) throw std::logic_error("ComplexLu::solve: not factored");
  if (b.size() != n_) throw std::invalid_argument("ComplexLu::solve: size mismatch");
  x = b;
  // factor() swaps full rows (multiplier columns included, the getrf
  // convention), so the whole permutation must be applied before the
  // forward sweep — interleaving swaps with elimination would read
  // multipliers that later pivots have already moved.
  for (std::size_t j = 0; j < n_; ++j)
    if (perm_[j] != j) std::swap(x[j], x[perm_[j]]);
  for (std::size_t j = 0; j < n_; ++j) {
    const Complex yj = x[j];
    if (yj == Complex(0.0, 0.0)) continue;
    for (std::size_t i = j + 1; i < n_; ++i) x[i] -= atc(i, j) * yj;
  }
  for (std::size_t j = n_; j-- > 0;) {
    const Complex yj = x[j] / atc(j, j);
    x[j] = yj;
    if (yj == Complex(0.0, 0.0)) continue;
    for (std::size_t i = 0; i < j; ++i) x[i] -= atc(i, j) * yj;
  }
}

ComplexVector ComplexLu::solve(const ComplexVector& b) const {
  ComplexVector x;
  solve(b, x);
  return x;
}

void ComplexSparseLu::checkPair(const SparseMatrix& re, const SparseMatrix& im) {
  if (!re.finalized() || !im.finalized())
    throw std::invalid_argument("ComplexSparseLu::factor: matrix not finalized");
  if (re.dim() == 0) throw std::invalid_argument("ComplexSparseLu::factor: empty matrix");
  if (re.dim() != im.dim() || re.rowPtr() != im.rowPtr() || re.colIdx() != im.colIdx())
    throw std::invalid_argument(
        "ComplexSparseLu::factor: real/imaginary patterns differ");
}

void ComplexSparseLu::factor(const SparseMatrix& re, const SparseMatrix& im) {
  checkPair(re, im);
  factored_ = false;
  if (re.dim() != n_ || re.patternVersion() != analyzed_re_version_ ||
      im.patternVersion() != analyzed_im_version_)
    analyzeWithOrder(re, im, reverseCuthillMcKee(re));
  factorNumeric(re, im);
}

void ComplexSparseLu::factorWithOrder(const SparseMatrix& re, const SparseMatrix& im,
                                      const std::vector<std::size_t>& order) {
  checkPair(re, im);
  if (order.size() != re.dim())
    throw std::invalid_argument("ComplexSparseLu::factorWithOrder: ordering size mismatch");
  factored_ = false;
  if (re.dim() != n_ || re.patternVersion() != analyzed_re_version_ ||
      im.patternVersion() != analyzed_im_version_ || order_ != order)
    analyzeWithOrder(re, im, order);
  factorNumeric(re, im);
}

void ComplexSparseLu::analyzeWithOrder(const SparseMatrix& re, const SparseMatrix& im,
                                       std::vector<std::size_t> order) {
  n_ = re.dim();
  order_ = std::move(order);
  pos_.assign(n_, 0);
  for (std::size_t k = 0; k < n_; ++k) pos_[order_[k]] = k;

  kl_ = ku_ = 0;
  const auto& row_ptr = re.rowPtr();
  const auto& col_idx = re.colIdx();
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t i = pos_[r];
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const std::size_t j = pos_[col_idx[k]];
      if (i > j) kl_ = std::max(kl_, i - j);
      if (j > i) ku_ = std::max(ku_, j - i);
    }
  }
  ldab_ = 2 * kl_ + ku_ + 1;  // kl spare superdiagonals absorb pivot growth
  shift_ = kl_ + ku_;
  ab_.assign(ldab_ * n_, Complex(0.0, 0.0));
  piv_.assign(n_, 0);
  analyzed_re_version_ = re.patternVersion();
  analyzed_im_version_ = im.patternVersion();
}

void ComplexSparseLu::factorNumeric(const SparseMatrix& re, const SparseMatrix& im) {
  std::fill(ab_.begin(), ab_.end(), Complex(0.0, 0.0));
  const auto& row_ptr = re.rowPtr();
  const auto& col_idx = re.colIdx();
  const auto& re_vals = re.values();
  const auto& im_vals = im.values();
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t i = pos_[r];
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
      at(i, pos_[col_idx[k]]) += Complex(re_vals[k], im_vals[k]);
  }

  // Health probes, as in SparseLu: the band holds exactly the permuted A
  // after the scatter, so one pass gives max|A|.
  max_abs_a_ = 0.0;
  for (const Complex& v : ab_) max_abs_a_ = std::max(max_abs_a_, std::abs(v));
  min_abs_pivot_ = 0.0;
  max_abs_u_ = 0.0;

  // Banded LU with partial pivoting (unblocked gbtrf, complex scalars).
  // The band-robustness argument is inherited from SparseLu: for column j
  // every structurally possible pivot candidate lies in rows j..j+kl.
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t i_max = std::min(n_ - 1, j + kl_);
    std::size_t ip = j;
    double p_abs = std::abs(atc(j, j));
    for (std::size_t i = j + 1; i <= i_max; ++i) {
      const double v = std::abs(atc(i, j));
      if (v > p_abs) {
        p_abs = v;
        ip = i;
      }
    }
    if (p_abs == 0.0)
      throw std::runtime_error("ComplexSparseLu::factor: singular matrix");
    min_abs_pivot_ = j == 0 ? p_abs : std::min(min_abs_pivot_, p_abs);
    piv_[j] = ip;
    const std::size_t c_max = std::min(n_ - 1, j + kl_ + ku_);
    if (ip != j) {
      for (std::size_t c = j; c <= c_max; ++c) std::swap(at(j, c), at(ip, c));
    }
    const Complex pivot = atc(j, j);
    for (std::size_t i = j + 1; i <= i_max; ++i) {
      const Complex l = atc(i, j) / pivot;
      at(i, j) = l;
      if (l == Complex(0.0, 0.0)) continue;
      for (std::size_t c = j + 1; c <= c_max; ++c) at(i, c) -= l * atc(j, c);
    }
  }
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t i_min = j > kl_ + ku_ ? j - kl_ - ku_ : 0;
    for (std::size_t i = i_min; i <= j; ++i)
      max_abs_u_ = std::max(max_abs_u_, std::abs(atc(i, j)));
  }
  factored_ = true;
}

void ComplexSparseLu::solve(const ComplexVector& b, ComplexVector& x) const {
  if (!factored_) throw std::logic_error("ComplexSparseLu::solve: not factored");
  if (b.size() != n_)
    throw std::invalid_argument("ComplexSparseLu::solve: size mismatch");
  work_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) work_[k] = b[order_[k]];
  for (std::size_t j = 0; j < n_; ++j) {
    if (piv_[j] != j) std::swap(work_[j], work_[piv_[j]]);
    const Complex yj = work_[j];
    if (yj == Complex(0.0, 0.0)) continue;
    const std::size_t i_max = std::min(n_ - 1, j + kl_);
    for (std::size_t i = j + 1; i <= i_max; ++i) work_[i] -= atc(i, j) * yj;
  }
  for (std::size_t j = n_; j-- > 0;) {
    const Complex yj = work_[j] / atc(j, j);
    work_[j] = yj;
    if (yj == Complex(0.0, 0.0)) continue;
    const std::size_t i_min = j > kl_ + ku_ ? j - kl_ - ku_ : 0;
    for (std::size_t i = i_min; i < j; ++i) work_[i] -= atc(i, j) * yj;
  }
  x.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) x[order_[k]] = work_[k];
}

ComplexVector ComplexSparseLu::solve(const ComplexVector& b) const {
  ComplexVector x;
  solve(b, x);
  return x;
}

}  // namespace fdtdmm
