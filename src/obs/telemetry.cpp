#include "obs/telemetry.h"

#include <algorithm>

namespace fdtdmm {
namespace obs {

void RunTelemetry::merge(const RunTelemetry& o) {
  phases += o.phases;
  lu_factorizations += o.lu_factorizations;
  newton_iterations += o.newton_iterations;
  max_newton_iterations = std::max(max_newton_iterations, o.max_newton_iterations);
  steps += o.steps;
  transient_runs += o.transient_runs;
  pattern_realignments += o.pattern_realignments;
  shared_base_builds += o.shared_base_builds;
  shared_base_reuses += o.shared_base_reuses;
  shared_symbolic_builds += o.shared_symbolic_builds;
  shared_symbolic_reuses += o.shared_symbolic_reuses;
  wall_seconds += o.wall_seconds;
  health.merge(o.health);
}

}  // namespace obs
}  // namespace fdtdmm
