#pragma once
/// \file histogram.h
/// Mergeable log-bucketed latency/size histograms with percentile queries.
///
/// Counters (obs/counters.h) answer "how many / how long in total"; this
/// module answers "how is it *distributed*" — p50/p95/p99 corner wall
/// time, solve latency, Newton iteration counts, ThreadPool queue wait —
/// without storing individual samples. Buckets are logarithmic (a fixed
/// number per decade over [min_value, max_value], plus underflow and
/// overflow buckets), so relative error of a percentile estimate is
/// bounded by the bucket ratio (~12% at the default 20 buckets/decade)
/// across twelve decades of dynamic range, in O(decades * per_decade)
/// space.
///
/// Percentile queries use the type-7 quantile convention (h = (n-1) q,
/// linear interpolation) to match math/stats.h percentile(): a Histogram
/// percentile and a percentile() over the raw sorted samples agree to
/// within one bucket's width (pinned by tests/test_obs_histogram.cpp).
///
/// Threading model mirrors TraceWriter's buffer cache: a
/// HistogramRegistry hands each thread its own shard keyed by a
/// process-unique registry id, so record() is uncontended on the hot
/// path; snapshot() merges all shards under the registry mutex. Merging
/// is exact (bucket counts add), which is what makes per-thread sharding
/// deterministic: counts, min, max, and percentile results do not depend
/// on which thread recorded which sample. (The running `sum` merges in
/// floating point, so mean() can differ in the last ulps across merge
/// orders — telemetry JSON is not byte-pinned on histogram content.)

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace fdtdmm {
namespace obs {

/// Bucket layout of a Histogram. The defaults span 1 ns .. ~31.7 years in
/// seconds (or 1e-9 .. 1e9 of any unit) — wide enough that the under/
/// overflow buckets only catch true outliers.
struct HistogramSpec {
  double min_value = 1e-9;
  double max_value = 1e9;
  int buckets_per_decade = 20;
};

/// One log-bucketed histogram. Not internally synchronized — use a
/// HistogramRegistry for concurrent recording.
class Histogram {
 public:
  Histogram() : Histogram(HistogramSpec{}) {}
  explicit Histogram(const HistogramSpec& spec);

  /// Records one sample. Negative and NaN samples are clamped into the
  /// underflow bucket (they never occur for durations/counts; clamping
  /// keeps record() total).
  void record(double value);

  /// Adds another histogram's contents. \throws std::invalid_argument on
  /// mismatched bucket layouts.
  void merge(const Histogram& o);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  /// Exact smallest/largest recorded sample (0 when empty).
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Type-7 quantile estimate (q in [0,1]; see file comment). Returns 0
  /// when empty. Exact at the extremes (q touching the first/last sample
  /// returns min()/max()); elsewhere accurate to one bucket's width.
  double percentile(double q) const;

  const HistogramSpec& spec() const { return spec_; }

 private:
  double bucketLow(std::size_t b) const;
  double bucketHigh(std::size_t b) const;

  HistogramSpec spec_;
  double log_min_ = 0.0;
  double inv_log_step_ = 0.0;  ///< buckets_per_decade / ln(10)
  std::vector<std::uint64_t> counts_;  ///< [underflow, decades..., overflow]
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named histograms with per-thread shards; see the file comment for the
/// threading model. Typical use: a SweepRunner-local registry records
/// from worker threads, then snapshot() once at end of sweep.
class HistogramRegistry {
 public:
  HistogramRegistry();
  ~HistogramRegistry();
  HistogramRegistry(const HistogramRegistry&) = delete;
  HistogramRegistry& operator=(const HistogramRegistry&) = delete;

  /// Records into this thread's shard of `name` (created on first use
  /// with `spec`). Uncontended with other threads except on shard
  /// creation.
  void record(const std::string& name, double value,
              const HistogramSpec& spec = HistogramSpec{});

  /// Merged view of every thread's shards.
  std::map<std::string, Histogram> snapshot() const;

 private:
  struct Shard {
    std::mutex mu;  ///< guards map growth vs a concurrent snapshot()
    std::map<std::string, Histogram> histograms;
  };
  Shard* threadShard() const;

  const std::uint64_t id_;  ///< process-unique, keys the thread-local cache
  mutable std::mutex mu_;   ///< guards shards_
  mutable std::vector<Shard*> shards_;
};

}  // namespace obs
}  // namespace fdtdmm
