#pragma once
/// \file progress.h
/// Throttled live progress/health stream for long sweeps.
///
/// A 1000-sample Monte Carlo ensemble is a black box until it finishes:
/// telemetry JSON and metrics files only exist afterwards. ProgressReporter
/// is the *during* surface — worker threads report each completed corner,
/// and at most once per min_interval_seconds (plus one guaranteed final
/// emission) a ProgressSnapshot goes to a sink: corners done/total,
/// EMA-smoothed corners/s and ETA, worker utilization, solver-/result-cache
/// hit rates, and running health warn/critical counts (obs/health.h).
///
/// The default sink prints `# progress: ...` lines to stderr — on stderr so
/// piping an example's stdout (metrics, telemetry) stays clean, and in the
/// same `#`-prefixed style as the examples' stats footers. A custom sink
/// callback is the streaming hook for ROADMAP's sweep-server: the same
/// snapshots, forwarded to clients instead of a TTY.
///
/// Thread-safe: taskDone/taskReplayed may be called from any worker thread;
/// the sink runs under the reporter's mutex (keep sinks cheap — the default
/// one is a single fprintf). Disabled reporters (ProgressOptions::enabled
/// false) cost one branch per call.

#include <cstddef>
#include <functional>
#include <mutex>
#include <string>

#include "obs/health.h"

namespace fdtdmm {
namespace obs {

/// One progress emission. Rates that the runner could not supply (no
/// stats hook installed, or a cache is not in use) are negative and
/// omitted from the formatted line.
struct ProgressSnapshot {
  std::size_t done = 0;   ///< corners finished (ok + failed + replayed)
  std::size_t total = 0;
  std::size_t failed = 0;
  std::size_t replayed = 0;  ///< served from the result cache
  double elapsed_seconds = 0.0;
  double corners_per_second = 0.0;  ///< EMA-smoothed completion rate
  double eta_seconds = -1.0;        ///< remaining / rate; <0 if unknown
  double worker_utilization = -1.0;     ///< busy / (workers * elapsed), 0..1
  double solver_cache_hit_rate = -1.0;  ///< numeric-base hits / lookups
  double result_cache_hit_rate = -1.0;  ///< replays / corners submitted
  long long health_warn = 0;      ///< corners graded warn so far
  long long health_critical = 0;  ///< corners graded critical so far
  bool final = false;             ///< true for the finish() emission
};

/// Configuration, carried by SweepRunnerOptions::progress.
struct ProgressOptions {
  bool enabled = false;
  /// Minimum seconds between emissions (finish() always emits).
  double min_interval_seconds = 0.5;
  /// EMA smoothing factor for corners/s (1 = instantaneous, ~0.3 settles
  /// in a few emissions without jittering on scheduler noise).
  double ema_alpha = 0.3;
  /// Destination; defaults to `# progress: ...` lines on stderr.
  std::function<void(const ProgressSnapshot&)> sink;
};

/// Formats a snapshot as the default single-line form (no newline):
/// `# progress: 37/114 corners (32.5%) | 12.3/s | eta 6s | util 87% | ...`.
std::string formatProgressLine(const ProgressSnapshot& s);

/// The reporter; see the file comment. Constructed by SweepRunner with the
/// task total and a stats hook that fills utilization/cache-hit fields
/// from ThreadPool::stats() and the cache counters at emission time.
class ProgressReporter {
 public:
  using StatsFn = std::function<void(ProgressSnapshot&)>;

  ProgressReporter(const ProgressOptions& opt, std::size_t total,
                   StatsFn stats = {});

  bool enabled() const { return opt_.enabled; }

  /// Reports one corner finished by a worker (ok or failed), with its
  /// graded severity. May emit (throttled).
  void taskDone(bool ok, HealthSeverity severity);

  /// Reports one corner served from the result cache (replay pre-pass).
  void taskReplayed(HealthSeverity severity);

  /// Emits the final unthrottled snapshot (flagged final). Idempotent.
  void finish();

 private:
  void noteSeverity(HealthSeverity severity);
  void maybeEmit(bool force);

  ProgressOptions opt_;
  StatsFn stats_;
  std::mutex mu_;
  std::size_t total_ = 0;
  std::size_t done_ = 0;
  std::size_t failed_ = 0;
  std::size_t replayed_ = 0;
  long long health_warn_ = 0;
  long long health_critical_ = 0;
  double start_seconds_ = 0.0;      ///< steady-clock origin
  double last_emit_seconds_ = 0.0;  ///< elapsed at last emission
  std::size_t last_emit_done_ = 0;
  double ema_rate_ = -1.0;
  bool finished_ = false;
};

}  // namespace obs
}  // namespace fdtdmm
