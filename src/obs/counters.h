#pragma once
/// \file counters.h
/// Thread-safe counter/timer registry for the observability subsystem.
///
/// Two pieces:
///   - Counters: a named registry of Metric{count, seconds} slots. Safe to
///     hammer from any number of threads (one mutex; increments are cheap
///     relative to the simulation work they annotate). Used for the
///     extensible "everything else" bucket of telemetry — the engine's hot
///     paths accumulate into plain struct fields (see obs/telemetry.h) and
///     fold into a Counters only at aggregation time.
///   - ScopedTimer: RAII span that adds its elapsed wall time to a sink on
///     destruction. The sink is a plain `double*` (the hot-path form — no
///     lock, the caller owns the accumulator) or a (Counters*, name) pair.
///     A *disabled* span (null sink) costs exactly one branch at
///     construction and one at destruction: no clock call, no allocation.
///     This is the contract that lets instrumentation stay compiled into
///     the solver loops permanently and be switched off at runtime.

#include <chrono>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace fdtdmm {
namespace obs {

/// One registry slot: an event count and an accumulated duration. Pure
/// counters leave `seconds` at 0; pure timers usually bump both.
struct Metric {
  long long count = 0;
  double seconds = 0.0;
};

/// Named metric registry. All methods are thread-safe; reads return
/// snapshots (values keep moving underneath).
class Counters {
 public:
  Counters() = default;
  Counters(const Counters& other) : metrics_(other.snapshot()) {}
  Counters& operator=(const Counters& other);

  /// Adds `delta` to the named count (creates the slot on first use).
  void add(const std::string& name, long long delta = 1);

  /// Adds elapsed seconds (and `count_delta` events) to the named slot.
  void addSeconds(const std::string& name, double s, long long count_delta = 1);

  /// Current count / seconds of a slot; 0 when the slot does not exist.
  long long count(const std::string& name) const;
  double seconds(const std::string& name) const;

  /// Copy of every slot, for export and merging.
  std::map<std::string, Metric> snapshot() const;

  /// Adds every slot of `other` into this registry.
  void merge(const Counters& other);

  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Metric> metrics_;
};

/// Canonical JSON form of a Counters snapshot: one object keyed by metric
/// name (sorted), each slot rendered as {"count": N, "seconds": S} with
/// seconds in %.9g. Every exporter embeds counters through this one
/// function — sweep telemetry JSON ("counters"), the bench telemetryJson
/// summaries, and the examples' stats footers — so slot keys and number
/// formatting cannot drift between them.
std::string countersJson(const Counters& counters);

/// RAII wall-time span. See the file comment for the disabled-cost
/// contract. Not copyable; intended for block scope only.
class ScopedTimer {
 public:
  using Clock = std::chrono::steady_clock;

  /// Accumulates into `*accum` (seconds). Null = disabled (one branch).
  explicit ScopedTimer(double* accum) : accum_(accum) {
    if (accum_ != nullptr) start_ = Clock::now();
  }

  /// Accumulates into `counters->addSeconds(name, ...)`. Null = disabled.
  /// `name` must outlive the span (string literals in practice).
  ScopedTimer(Counters* counters, const char* name)
      : counters_(counters), name_(name) {
    if (counters_ != nullptr) start_ = Clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (accum_ != nullptr) {
      *accum_ += std::chrono::duration<double>(Clock::now() - start_).count();
    } else if (counters_ != nullptr) {
      counters_->addSeconds(
          name_, std::chrono::duration<double>(Clock::now() - start_).count());
    }
  }

 private:
  double* accum_ = nullptr;
  Counters* counters_ = nullptr;
  const char* name_ = nullptr;
  Clock::time_point start_;
};

}  // namespace obs
}  // namespace fdtdmm
