#include "obs/histogram.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

namespace fdtdmm {
namespace obs {

namespace {
constexpr double kLn10 = 2.302585092994046;
}  // namespace

Histogram::Histogram(const HistogramSpec& spec) : spec_(spec) {
  if (!(spec_.min_value > 0.0) || !(spec_.max_value > spec_.min_value) ||
      spec_.buckets_per_decade <= 0)
    throw std::invalid_argument("Histogram: invalid spec");
  log_min_ = std::log(spec_.min_value);
  inv_log_step_ = static_cast<double>(spec_.buckets_per_decade) / kLn10;
  const double decades = std::log10(spec_.max_value / spec_.min_value);
  const std::size_t interior = static_cast<std::size_t>(
      std::ceil(decades * spec_.buckets_per_decade - 1e-9));
  counts_.assign(interior + 2, 0);  // [underflow, interior..., overflow]
}

double Histogram::bucketLow(std::size_t b) const {
  // Interior bucket b (1-based within counts_) starts at
  // min_value * 10^((b-1)/per_decade).
  return std::exp(log_min_ + static_cast<double>(b - 1) / inv_log_step_);
}

double Histogram::bucketHigh(std::size_t b) const {
  if (b + 1 == counts_.size() - 1)  // last interior bucket ends at max
    return spec_.max_value;
  return std::exp(log_min_ + static_cast<double>(b) / inv_log_step_);
}

void Histogram::record(double value) {
  if (std::isnan(value) || value < 0.0) value = 0.0;
  std::size_t b;
  if (value < spec_.min_value) {
    b = 0;
  } else if (value >= spec_.max_value) {
    b = counts_.size() - 1;
  } else {
    const double off = (std::log(value) - log_min_) * inv_log_step_;
    b = 1 + static_cast<std::size_t>(off < 0.0 ? 0.0 : off);
    if (b > counts_.size() - 2) b = counts_.size() - 2;
  }
  ++counts_[b];
  min_ = count_ == 0 ? value : std::min(min_, value);
  max_ = count_ == 0 ? value : std::max(max_, value);
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& o) {
  if (o.counts_.size() != counts_.size() ||
      o.spec_.min_value != spec_.min_value || o.spec_.max_value != spec_.max_value ||
      o.spec_.buckets_per_decade != spec_.buckets_per_decade)
    throw std::invalid_argument("Histogram::merge: bucket layout mismatch");
  if (o.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  min_ = count_ == 0 ? o.min_ : std::min(min_, o.min_);
  max_ = count_ == 0 ? o.max_ : std::max(max_, o.max_);
  count_ += o.count_;
  sum_ += o.sum_;
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Type-7: the quantile sits at fractional order-statistic index
  // h = (n-1) q; interpolate between the estimated order statistics at
  // floor(h) and ceil(h).
  const double h = static_cast<double>(count_ - 1) * q;
  const std::uint64_t k_lo = static_cast<std::uint64_t>(h);
  const double frac = h - static_cast<double>(k_lo);

  // Estimates the k-th (0-based) order statistic from the bucket counts:
  // samples within a bucket are assumed evenly spread, each occupying the
  // center of its 1/c slice of the bucket span.
  auto orderStat = [this](std::uint64_t k) {
    if (k == 0) return min_;                 // exact at the extremes
    if (k == count_ - 1) return max_;
    std::uint64_t c0 = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      const std::uint64_t c = counts_[b];
      if (c == 0) continue;
      if (k < c0 + c) {
        const double within =
            (static_cast<double>(k - c0) + 0.5) / static_cast<double>(c);
        double lo, hi;
        if (b == 0) {  // underflow: interpolate over [0, min_value)
          lo = 0.0;
          hi = spec_.min_value;
        } else if (b == counts_.size() - 1) {  // overflow: pinned at max
          return max_;
        } else {
          lo = bucketLow(b);
          hi = bucketHigh(b);
        }
        const double v = lo + (hi - lo) * within;
        return std::min(max_, std::max(min_, v));  // never outside the data
      }
      c0 += c;
    }
    return max_;  // unreachable: counts_ sums to count_
  };

  const double lo = orderStat(k_lo);
  if (frac == 0.0) return lo;
  return lo + (orderStat(k_lo + 1) - lo) * frac;
}

namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};

/// Per-thread shard cache, keyed by registry id (the TraceWriter
/// thread-buffer pattern): one entry per thread, revalidated by id so a
/// thread recording into a second registry transparently re-registers.
struct ShardCache {
  std::uint64_t id = 0;
  void* shard = nullptr;
};
thread_local ShardCache t_shard_cache;

}  // namespace

HistogramRegistry::HistogramRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

HistogramRegistry::~HistogramRegistry() {
  std::lock_guard<std::mutex> lk(mu_);
  for (Shard* s : shards_) delete s;
  shards_.clear();
  // A stale t_shard_cache entry in some thread still carries this id_;
  // ids are process-unique, so it can never be revalidated — the next
  // record() from that thread registers a fresh shard with the next
  // registry. (Recording into a *destroyed* registry is a caller bug,
  // same as for Counters.)
}

HistogramRegistry::Shard* HistogramRegistry::threadShard() const {
  ShardCache& cache = t_shard_cache;
  if (cache.id == id_) return static_cast<Shard*>(cache.shard);
  Shard* s = new Shard();
  {
    std::lock_guard<std::mutex> lk(mu_);
    shards_.push_back(s);
  }
  cache.id = id_;
  cache.shard = s;
  return s;
}

void HistogramRegistry::record(const std::string& name, double value,
                               const HistogramSpec& spec) {
  Shard* s = threadShard();
  std::lock_guard<std::mutex> lk(s->mu);  // uncontended except vs snapshot()
  auto it = s->histograms.find(name);
  if (it == s->histograms.end())
    it = s->histograms.emplace(name, Histogram(spec)).first;
  it->second.record(value);
}

std::map<std::string, Histogram> HistogramRegistry::snapshot() const {
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lk(mu_);
    shards = shards_;
  }
  std::map<std::string, Histogram> out;
  for (Shard* s : shards) {
    std::lock_guard<std::mutex> lk(s->mu);
    for (const auto& [name, h] : s->histograms) {
      auto it = out.find(name);
      if (it == out.end())
        out.emplace(name, h);
      else
        it->second.merge(h);
    }
  }
  return out;
}

}  // namespace obs
}  // namespace fdtdmm
