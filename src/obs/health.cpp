#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fdtdmm {
namespace obs {

const char* healthSeverityName(HealthSeverity s) {
  switch (s) {
    case HealthSeverity::kOk:
      return "ok";
    case HealthSeverity::kWarn:
      return "warn";
    case HealthSeverity::kCritical:
      return "critical";
  }
  return "ok";
}

void NumericalHealth::recordFactorization(double min_pivot, double growth) {
  collected = true;
  min_abs_pivot =
      factorizations == 0 ? min_pivot : std::min(min_abs_pivot, min_pivot);
  max_pivot_growth = std::max(max_pivot_growth, growth);
  ++factorizations;
}

void NumericalHealth::recordNewtonStep(const std::vector<double>& trajectory,
                                       NewtonOutcome outcome) {
  collected = true;
  switch (outcome) {
    case NewtonOutcome::kConverged:
      ++newton_steps_converged;
      break;
    case NewtonOutcome::kStagnated:
      ++newton_steps_stagnated;
      break;
    case NewtonOutcome::kDiverged:
      ++newton_steps_diverged;
      break;
  }
  // "Worst" = most iterations, ties broken by larger final |dx| — the step
  // that fought convergence hardest is the one worth keeping for forensics.
  const bool worse =
      trajectory.size() > worst_newton_trajectory.size() ||
      (trajectory.size() == worst_newton_trajectory.size() &&
       !trajectory.empty() && trajectory.back() > worst_newton_trajectory.back());
  if (worse) {
    const std::size_t keep = std::min(trajectory.size(), kMaxTrajectory);
    worst_newton_trajectory.assign(trajectory.begin(),
                                   trajectory.begin() + static_cast<std::ptrdiff_t>(keep));
  }
}

void NumericalHealth::merge(const NumericalHealth& o) {
  if (!o.collected) return;
  if (!collected) {
    *this = o;
    return;
  }
  severity = std::max(severity, o.severity);
  if (o.factorizations > 0) {
    min_abs_pivot = factorizations == 0 ? o.min_abs_pivot
                                        : std::min(min_abs_pivot, o.min_abs_pivot);
    max_pivot_growth = std::max(max_pivot_growth, o.max_pivot_growth);
    factorizations += o.factorizations;
  }
  condition_estimates += o.condition_estimates;
  max_condition_estimate = std::max(max_condition_estimate, o.max_condition_estimate);
  residual_checks += o.residual_checks;
  max_relative_residual = std::max(max_relative_residual, o.max_relative_residual);
  newton_steps_converged += o.newton_steps_converged;
  newton_steps_stagnated += o.newton_steps_stagnated;
  newton_steps_diverged += o.newton_steps_diverged;
  const auto& t = o.worst_newton_trajectory;
  const bool worse = t.size() > worst_newton_trajectory.size() ||
                     (t.size() == worst_newton_trajectory.size() && !t.empty() &&
                      t.back() > worst_newton_trajectory.back());
  if (worse) worst_newton_trajectory = t;
}

void gradeHealth(NumericalHealth& h, const HealthThresholds& t) {
  if (!h.collected) return;
  HealthSeverity s = h.severity;
  auto raise = [&s](HealthSeverity to) { s = std::max(s, to); };
  if (h.residual_checks > 0) {
    if (h.max_relative_residual >= t.residual_critical)
      raise(HealthSeverity::kCritical);
    else if (h.max_relative_residual >= t.residual_warn)
      raise(HealthSeverity::kWarn);
  }
  if (h.condition_estimates > 0) {
    if (h.max_condition_estimate >= t.condition_critical)
      raise(HealthSeverity::kCritical);
    else if (h.max_condition_estimate >= t.condition_warn)
      raise(HealthSeverity::kWarn);
  }
  if (h.factorizations > 0) {
    if (h.max_pivot_growth >= t.growth_critical)
      raise(HealthSeverity::kCritical);
    else if (h.max_pivot_growth >= t.growth_warn)
      raise(HealthSeverity::kWarn);
  }
  if (h.newton_steps_diverged > 0) raise(HealthSeverity::kCritical);
  if (h.newton_steps_stagnated > 0) raise(HealthSeverity::kWarn);
  h.severity = s;
}

double estimateInverseNorm1(std::size_t n, const SolveFn& solve, const SolveFn& solveT) {
  if (n == 0) throw std::invalid_argument("estimateInverseNorm1: empty system");
  // Hager's algorithm (the LAPACK xLACON idea): gradient ascent on the
  // convex function f(x) = ||A^-1 x||_1 over the unit 1-norm ball, whose
  // maximum is attained at a signed unit basis vector. Each iteration is
  // one solve + one transpose solve on the cached factors.
  Vector x(n, 1.0 / static_cast<double>(n));
  Vector y, z;
  double est = 0.0;
  std::size_t last_j = n;  // basis index of the previous iterate
  for (int iter = 0; iter < 5; ++iter) {
    solve(x, y);
    double est_new = 0.0;
    for (double v : y) est_new += std::abs(v);
    if (iter > 0 && est_new <= est) break;  // stopped growing: done
    est = est_new;
    // xi = sign(y); z = A^-T xi picks the steepest-ascent coordinate.
    Vector xi(n);
    for (std::size_t i = 0; i < n; ++i) xi[i] = y[i] >= 0.0 ? 1.0 : -1.0;
    solveT(xi, z);
    std::size_t j = 0;
    double z_max = std::abs(z[0]);
    for (std::size_t i = 1; i < n; ++i) {
      const double v = std::abs(z[i]);
      if (v > z_max) {
        z_max = v;
        j = i;
      }
    }
    double ztx = 0.0;
    for (std::size_t i = 0; i < n; ++i) ztx += z[i] * x[i];
    if (z_max <= ztx || j == last_j) break;  // local maximum reached
    std::fill(x.begin(), x.end(), 0.0);
    x[j] = 1.0;
    last_j = j;
  }
  return est;
}

double matrixNorm1(const Matrix& a) {
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  double norm = 0.0;
  for (std::size_t j = 0; j < cols; ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < rows; ++i) col += std::abs(a(i, j));
    norm = std::max(norm, col);
  }
  return norm;
}

double matrixNorm1(const SparseMatrix& a) {
  if (!a.finalized()) throw std::invalid_argument("matrixNorm1: matrix not finalized");
  const std::size_t n = a.dim();
  Vector col_sum(n, 0.0);
  const auto& row_ptr = a.rowPtr();
  const auto& col_idx = a.colIdx();
  const auto& values = a.values();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
      col_sum[col_idx[k]] += std::abs(values[k]);
  double norm = 0.0;
  for (double v : col_sum) norm = std::max(norm, v);
  return norm;
}

}  // namespace obs
}  // namespace fdtdmm
