#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace fdtdmm {
namespace obs {

namespace {

std::atomic<TraceWriter*> g_active{nullptr};
std::atomic<std::uint64_t> g_next_writer_id{1};

std::string jsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

TraceWriter::TraceWriter(std::string path)
    : id_(g_next_writer_id.fetch_add(1)),
      epoch_(Clock::now()),
      path_(std::move(path)) {}

TraceWriter::~TraceWriter() {
  // Never leave a dangling active pointer behind; spans resolve active()
  // once at construction, so the writer must be deactivated before (or at)
  // destruction. This covers the "forgot to reset" case.
  TraceWriter* self = this;
  g_active.compare_exchange_strong(self, nullptr);
  // Best-effort final flush: whatever tears this writer down — normal
  // shutdown, early return, exception unwind — the events recorded so far
  // reach disk as a complete document. I/O errors are swallowed
  // (destructors must not throw); an explicit flush() is the checked path.
  if (!path_.empty()) {
    try {
      flush();
    } catch (...) {
    }
  }
}

TraceWriter* TraceWriter::active() { return g_active.load(std::memory_order_acquire); }

void TraceWriter::setActive(TraceWriter* writer) {
  g_active.store(writer, std::memory_order_release);
}

TraceWriter::ThreadBuf& TraceWriter::threadBuf() {
  // Per-thread cache of (writer id -> buffer). Writer ids are process-
  // unique and never reused, so a stale cache entry for a destroyed writer
  // can never be confused with a new writer at the same address.
  struct CacheEntry {
    std::uint64_t writer_id;
    ThreadBuf* buf;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.writer_id == id_) return *e.buf;
  }
  std::lock_guard<std::mutex> lock(mu_);
  bufs_.push_back(std::make_unique<ThreadBuf>());
  ThreadBuf* buf = bufs_.back().get();
  buf->tid = static_cast<std::uint32_t>(bufs_.size());
  cache.push_back({id_, buf});
  return *buf;
}

void TraceWriter::push(ThreadBuf& buf, Event e) {
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(e));
}

void TraceWriter::completeEvent(const std::string& name, const char* cat,
                                Clock::time_point begin, Clock::time_point end,
                                std::string args_json) {
  ThreadBuf& buf = threadBuf();
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.ts_us = toUs(begin);
  e.dur_us = std::max(0.0, toUs(end) - e.ts_us);
  e.tid = buf.tid;
  e.args = std::move(args_json);
  push(buf, std::move(e));
}

void TraceWriter::instantEvent(const std::string& name, const char* cat,
                               std::string args_json) {
  ThreadBuf& buf = threadBuf();
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.ts_us = toUs(Clock::now());
  e.dur_us = 0.0;
  e.tid = buf.tid;
  e.args = std::move(args_json);
  push(buf, std::move(e));
}

void TraceWriter::counterEvent(const std::string& name, const char* series,
                               double value) {
  ThreadBuf& buf = threadBuf();
  Event e;
  e.name = name;
  e.cat = "counter";
  e.ph = 'C';
  e.ts_us = toUs(Clock::now());
  e.dur_us = 0.0;
  e.tid = buf.tid;
  e.args = jsonQuote(series) + ": " + num(value);
  push(buf, std::move(e));
}

std::string TraceWriter::toJson() const {
  // Merge every thread's buffer under the registration lock (new threads
  // may still be appearing) and sort by timestamp so the file is stable
  // and diff-friendly; viewers accept either order.
  std::vector<Event> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : bufs_) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });

  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Event& e = all[i];
    out += (i ? ",\n" : "\n");
    out += "    {\"name\": " + jsonQuote(e.name) + ", \"cat\": \"" + e.cat +
           "\", \"ph\": \"" + e.ph + "\", \"ts\": " + num(e.ts_us);
    if (e.ph == 'X') out += ", \"dur\": " + num(e.dur_us);
    if (e.ph == 'i') out += ", \"s\": \"t\"";
    out += ", \"pid\": 1, \"tid\": " + std::to_string(e.tid);
    if (!e.args.empty()) out += ", \"args\": {" + e.args + "}";
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void TraceWriter::flush() {
  if (path_.empty()) return;
  // Write-then-rename: the published path only ever holds a complete
  // document, so a crash mid-write (or a concurrent reader) sees either
  // the previous flush or this one, never a truncated JSON fragment.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream f(tmp);
    if (!f) throw std::runtime_error("TraceWriter: cannot open " + tmp);
    f << toJson();
    f.flush();
    if (!f) throw std::runtime_error("TraceWriter: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("TraceWriter: cannot rename " + tmp + " to " + path_);
  }
}

std::size_t TraceWriter::eventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : bufs_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void traceInstant(const char* name, const char* cat, std::string args_json) {
  if (TraceWriter* w = TraceWriter::active())
    w->instantEvent(name, cat, std::move(args_json));
}

namespace {
// The writer installed by initTraceFromArgs; owned here so examples and
// benches share one enable/flush pair without globals of their own.
std::unique_ptr<TraceWriter> g_cli_writer;
}  // namespace

ScopedTrace::ScopedTrace(ScopedTrace&& o) noexcept
    : path_(std::move(o.path_)), owns_(o.owns_) {
  o.owns_ = false;
  o.path_.clear();
}

ScopedTrace& ScopedTrace::operator=(ScopedTrace&& o) noexcept {
  if (this != &o) {
    if (owns_) shutdownTrace();
    path_ = std::move(o.path_);
    owns_ = o.owns_;
    o.owns_ = false;
    o.path_.clear();
  }
  return *this;
}

ScopedTrace::~ScopedTrace() {
  if (owns_) shutdownTrace();  // flush inside is best-effort, never throws
}

void ScopedTrace::flush() {
  if (g_cli_writer) g_cli_writer->flush();
}

ScopedTrace initTraceFromArgs(int argc, char** argv) {
  // A second call while the session is live returns a NON-owning handle:
  // exactly one destructor tears the session down.
  if (g_cli_writer) return ScopedTrace(g_cli_writer->path(), false);
  std::string path;
  if (const char* env = std::getenv("FDTDMM_TRACE")) path = env;
  const char* prefix = "--trace=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0)
      path = argv[i] + std::strlen(prefix);
  }
  if (path.empty()) return {};
  g_cli_writer = std::make_unique<TraceWriter>(path);
  TraceWriter::setActive(g_cli_writer.get());
  return ScopedTrace(path, true);
}

std::string shutdownTrace() {
  if (!g_cli_writer) return {};
  TraceWriter::setActive(nullptr);
  std::string path = g_cli_writer->path();
  g_cli_writer.reset();  // ~TraceWriter performs the final best-effort flush
  return path;
}

}  // namespace obs
}  // namespace fdtdmm
