#include "obs/counters.h"

#include <cstdio>

namespace fdtdmm {
namespace obs {

Counters& Counters::operator=(const Counters& other) {
  if (this == &other) return *this;
  auto snap = other.snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = std::move(snap);
  return *this;
}

void Counters::add(const std::string& name, long long delta) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_[name].count += delta;
}

void Counters::addSeconds(const std::string& name, double s, long long count_delta) {
  std::lock_guard<std::mutex> lock(mu_);
  Metric& m = metrics_[name];
  m.seconds += s;
  m.count += count_delta;
}

long long Counters::count(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  return it == metrics_.end() ? 0 : it->second.count;
}

double Counters::seconds(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  return it == metrics_.end() ? 0.0 : it->second.seconds;
}

std::map<std::string, Metric> Counters::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

void Counters::merge(const Counters& other) {
  // Snapshot first: locking both registries at once could deadlock if two
  // threads merge in opposite directions.
  auto snap = other.snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, m] : snap) {
    Metric& mine = metrics_[name];
    mine.count += m.count;
    mine.seconds += m.seconds;
  }
}

void Counters::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.clear();
}

std::string countersJson(const Counters& counters) {
  // Names are produced by this codebase (plain identifiers with dots), so
  // plain quoting suffices; %.9g matches the telemetry exporters.
  std::string out = "{";
  bool first = true;
  for (const auto& [name, m] : counters.snapshot()) {
    if (!first) out += ", ";
    first = false;
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.9g", m.seconds);
    out += "\"" + name + "\": {\"count\": " + std::to_string(m.count) +
           ", \"seconds\": " + buf + "}";
  }
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace fdtdmm
