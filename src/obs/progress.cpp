#include "obs/progress.h"

#include <chrono>
#include <cstdio>

namespace fdtdmm {
namespace obs {

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void appendPercent(std::string& out, const char* label, double rate) {
  if (rate < 0.0) return;
  char buf[64];
  std::snprintf(buf, sizeof buf, " | %s %.0f%%", label, rate * 100.0);
  out += buf;
}

}  // namespace

std::string formatProgressLine(const ProgressSnapshot& s) {
  char buf[128];
  const double pct =
      s.total > 0 ? 100.0 * static_cast<double>(s.done) / static_cast<double>(s.total)
                  : 0.0;
  std::snprintf(buf, sizeof buf, "# progress: %zu/%zu corners (%.1f%%)", s.done,
                s.total, pct);
  std::string out = buf;
  if (s.corners_per_second > 0.0) {
    std::snprintf(buf, sizeof buf, " | %.1f/s", s.corners_per_second);
    out += buf;
  }
  if (s.final) {
    std::snprintf(buf, sizeof buf, " | done in %.1fs", s.elapsed_seconds);
    out += buf;
  } else if (s.eta_seconds >= 0.0) {
    std::snprintf(buf, sizeof buf, " | eta %.0fs", s.eta_seconds);
    out += buf;
  }
  appendPercent(out, "util", s.worker_utilization);
  appendPercent(out, "solver-cache", s.solver_cache_hit_rate);
  appendPercent(out, "result-cache", s.result_cache_hit_rate);
  std::snprintf(buf, sizeof buf, " | health %lld warn / %lld critical",
                s.health_warn, s.health_critical);
  out += buf;
  if (s.failed > 0) {
    std::snprintf(buf, sizeof buf, " | %zu failed", s.failed);
    out += buf;
  }
  return out;
}

ProgressReporter::ProgressReporter(const ProgressOptions& opt, std::size_t total,
                                   StatsFn stats)
    : opt_(opt), stats_(std::move(stats)), total_(total) {
  if (!opt_.sink) {
    opt_.sink = [](const ProgressSnapshot& s) {
      std::fprintf(stderr, "%s\n", formatProgressLine(s).c_str());
    };
  }
  start_seconds_ = nowSeconds();
}

void ProgressReporter::noteSeverity(HealthSeverity severity) {
  if (severity == HealthSeverity::kWarn) ++health_warn_;
  if (severity == HealthSeverity::kCritical) ++health_critical_;
}

void ProgressReporter::taskDone(bool ok, HealthSeverity severity) {
  if (!opt_.enabled) return;
  std::lock_guard<std::mutex> lk(mu_);
  ++done_;
  if (!ok) ++failed_;
  noteSeverity(severity);
  maybeEmit(false);
}

void ProgressReporter::taskReplayed(HealthSeverity severity) {
  if (!opt_.enabled) return;
  std::lock_guard<std::mutex> lk(mu_);
  ++done_;
  ++replayed_;
  noteSeverity(severity);
  maybeEmit(false);
}

void ProgressReporter::finish() {
  if (!opt_.enabled) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (finished_) return;
  finished_ = true;
  maybeEmit(true);
}

void ProgressReporter::maybeEmit(bool force) {
  const double elapsed = nowSeconds() - start_seconds_;
  if (!force && elapsed - last_emit_seconds_ < opt_.min_interval_seconds) return;

  // Completion rate: EMA over the per-interval instantaneous rate, so a
  // slow corner mid-sweep drags the ETA up gradually instead of whipping
  // it around.
  const double dt = elapsed - last_emit_seconds_;
  if (dt > 0.0 && done_ > last_emit_done_) {
    const double inst = static_cast<double>(done_ - last_emit_done_) / dt;
    ema_rate_ = ema_rate_ < 0.0 ? inst
                                : opt_.ema_alpha * inst + (1.0 - opt_.ema_alpha) * ema_rate_;
  }
  last_emit_seconds_ = elapsed;
  last_emit_done_ = done_;

  ProgressSnapshot s;
  s.done = done_;
  s.total = total_;
  s.failed = failed_;
  s.replayed = replayed_;
  s.elapsed_seconds = elapsed;
  s.corners_per_second = ema_rate_ > 0.0 ? ema_rate_ : 0.0;
  if (ema_rate_ > 0.0 && total_ >= done_)
    s.eta_seconds = static_cast<double>(total_ - done_) / ema_rate_;
  s.health_warn = health_warn_;
  s.health_critical = health_critical_;
  s.final = finished_;
  if (stats_) stats_(s);
  opt_.sink(s);
}

}  // namespace obs
}  // namespace fdtdmm
