#pragma once
/// \file trace.h
/// Chrome trace-event writer: spans, instants, and counter samples that
/// load directly in chrome://tracing or https://ui.perfetto.dev.
///
/// ## Output schema (Trace Event Format, "JSON object" flavor)
///
///   { "displayTimeUnit": "ms",
///     "traceEvents": [
///       {"name": "...", "cat": "...", "ph": "X", "ts": <us>, "dur": <us>,
///        "pid": 1, "tid": <n>, "args": {...}},        // complete span
///       {"name": "...", "cat": "...", "ph": "i", "s": "t", "ts": <us>,
///        "pid": 1, "tid": <n>, "args": {...}},        // instant marker
///       {"name": "...", "ph": "C", "ts": <us>, "pid": 1, "tid": <n>,
///        "args": {"<series>": <value>}},              // counter sample
///       ... ] }
///
///   - ts is microseconds since the writer's construction (steady clock);
///   - tid is a small per-writer id assigned to each logging thread in
///     first-use order (sweep workers show up as parallel lanes);
///   - args carries the event's key/value annotations (solver counters,
///     task labels, ...).
///
/// ## Concurrency and cost model
/// Each thread appends to its own buffer (registered with the writer on
/// first use), so recording never contends across workers; flush() merges
/// the buffers, sorts by timestamp, and (re)writes the whole file — the
/// sweep engine calls it at sweep end. When no writer is active,
/// TraceSpan/instant/counter helpers cost one atomic load and one branch:
/// tracing stays compiled into the hot paths and is enabled per process
/// run (--trace=<file> flag or the FDTDMM_TRACE env var, see
/// initTraceFromArgs).
///
/// Lifetime: the writer must outlive every thread that logs to it. The
/// engine guarantees this by joining its pools before sweep end; the
/// process-global writer lives until shutdownTrace()/exit.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fdtdmm {
namespace obs {

class TraceWriter {
 public:
  using Clock = std::chrono::steady_clock;

  /// `path` is where flush() writes; may be empty for in-memory use
  /// (tests), in which case flush() is a no-op and toJson() reads back.
  explicit TraceWriter(std::string path);
  /// Best-effort final flush (silently swallowed on I/O failure — a
  /// destructor must not throw), then deactivates itself if still the
  /// active writer. The flush means a writer that goes out of scope on an
  /// early exit still leaves a complete, loadable trace file behind.
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Records a completed span [begin, end). `args_json` is a brace-less
  /// JSON fragment, e.g. "\"steps\": 4500, \"lu\": 1" (may be empty).
  void completeEvent(const std::string& name, const char* cat,
                     Clock::time_point begin, Clock::time_point end,
                     std::string args_json = {});

  /// Records a thread-scoped instant marker at "now".
  void instantEvent(const std::string& name, const char* cat,
                    std::string args_json = {});

  /// Records one sample of a named counter track at "now".
  void counterEvent(const std::string& name, const char* series, double value);

  /// Merged, ts-sorted trace document (see the file comment's schema).
  std::string toJson() const;

  /// Writes toJson() to the constructor path. Atomic: the document goes to
  /// `<path>.tmp` first and is renamed into place, so a reader (or a crash
  /// mid-write) never observes a truncated JSON fragment — every published
  /// file loads in Perfetto. Safe to call repeatedly (whole-file rewrite).
  /// \throws std::runtime_error if the file cannot be written.
  void flush();

  std::size_t eventCount() const;
  const std::string& path() const { return path_; }

  /// Process-global active writer; null when tracing is disabled. All
  /// library-internal instrumentation goes through this.
  static TraceWriter* active();
  static void setActive(TraceWriter* writer);

 private:
  struct Event {
    std::string name;
    const char* cat;
    char ph;  // 'X' complete, 'i' instant, 'C' counter
    double ts_us;
    double dur_us;
    std::uint32_t tid;
    std::string args;
  };
  struct ThreadBuf {
    std::uint32_t tid = 0;
    std::mutex mu;  // uncontended except against a concurrent flush
    std::vector<Event> events;
  };

  ThreadBuf& threadBuf();
  double toUs(Clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }
  void push(ThreadBuf& buf, Event e);

  const std::uint64_t id_;  // process-unique, guards thread_local caches
  const Clock::time_point epoch_;
  const std::string path_;
  mutable std::mutex mu_;  // guards bufs_ registration and merging
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
};

/// RAII complete-span against the *active* writer (resolved once at
/// construction). Disabled cost: one atomic load + branch per end.
class TraceSpan {
 public:
  /// `name`/`cat` must outlive the span (string literals in hot paths).
  explicit TraceSpan(const char* name, const char* cat = "sim")
      : writer_(TraceWriter::active()), name_(name), cat_(cat) {
    if (writer_ != nullptr) begin_ = TraceWriter::Clock::now();
  }

  /// Dynamic-name form (task labels). The string is copied up front, so
  /// prefer the literal form inside per-iteration loops.
  TraceSpan(std::string name, const char* cat)
      : writer_(TraceWriter::active()), dyn_name_(std::move(name)), cat_(cat) {
    if (writer_ != nullptr) begin_ = TraceWriter::Clock::now();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a brace-less JSON args fragment to the event (last call
  /// wins); typically invoked just before scope exit with final counters.
  void setArgs(std::string args_json) {
    if (writer_ != nullptr) args_ = std::move(args_json);
  }

  ~TraceSpan() {
    if (writer_ != nullptr) {
      writer_->completeEvent(name_ != nullptr ? std::string(name_) : dyn_name_,
                             cat_, begin_, TraceWriter::Clock::now(),
                             std::move(args_));
    }
  }

 private:
  TraceWriter* writer_;
  const char* name_ = nullptr;
  std::string dyn_name_;
  const char* cat_;
  std::string args_;
  TraceWriter::Clock::time_point begin_;
};

/// Instant marker against the active writer (no-op when disabled).
void traceInstant(const char* name, const char* cat,
                  std::string args_json = {});

/// Scoped handle to the process-global CLI trace session. Returned by
/// initTraceFromArgs: the handle that enabled tracing owns the session and
/// its destructor flushes + tears the writer down, so a `return` or an
/// exception anywhere in main() still leaves a complete trace file — the
/// RAII fix for the historical "crash mid-sweep leaves an unterminated
/// fragment" failure (TraceWriter::flush is additionally atomic, covering
/// hard crashes). Movable, not copyable; a disabled handle (tracing off)
/// is inert.
class [[nodiscard]] ScopedTrace {
 public:
  ScopedTrace() = default;
  ScopedTrace(ScopedTrace&& o) noexcept;
  ScopedTrace& operator=(ScopedTrace&& o) noexcept;
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
  /// Owning handle: shutdownTrace() (best-effort; never throws).
  ~ScopedTrace();

  /// True when tracing is active (path non-empty).
  bool enabled() const { return !path_.empty(); }
  /// The trace file path ("" when disabled).
  const std::string& path() const { return path_; }

  /// Flushes the trace to disk now (e.g. right after a sweep, before the
  /// process does unrelated work). \throws like TraceWriter::flush.
  void flush();

 private:
  friend ScopedTrace initTraceFromArgs(int argc, char** argv);
  ScopedTrace(std::string path, bool owns) : path_(std::move(path)), owns_(owns) {}

  std::string path_;
  bool owns_ = false;
};

/// Enables process-global tracing if `--trace=<file>` appears in argv or
/// the FDTDMM_TRACE env var names a file (flag wins). Returns a handle
/// whose path() is the trace file ("" when tracing stays disabled) and
/// whose destructor flushes + shuts the session down. Idempotent per
/// process: only the first enabling call returns an owning handle.
ScopedTrace initTraceFromArgs(int argc, char** argv);

/// Flushes and tears down the writer installed by initTraceFromArgs.
/// Returns the path written, or "" if tracing was not enabled. Usually
/// invoked via ~ScopedTrace; calling it directly is harmless (the handle's
/// destructor then finds nothing to do).
std::string shutdownTrace();

}  // namespace obs
}  // namespace fdtdmm
