#pragma once
/// \file telemetry.h
/// Per-run telemetry carried from the solver hot paths up to the sweep
/// engine's telemetry export. Mirrors the documentation style of
/// engine/sweep_result.h: every field here is a key in the telemetry JSON
/// (writeSweepTelemetryJson), so this comment block doubles as the schema.
///
/// ## TransientPhases (JSON object "phases")
/// Wall-clock seconds accumulated inside runTransient, split by phase:
///
///   - stamp_static   one-time static assembly of the MNA base matrix
///                    (element stampStatic walk + sparse pattern finalize)
///   - factor         LU factorizations, dense or sparse (base + any
///                    refactor forced by a matrix-dirtying dynamic stamp)
///   - rhs_stamp      per-Newton-iteration dynamic stamping: base-matrix
///                    restore, RHS rebuild, nonlinear Jacobian entries
///   - solve          forward/back substitutions
///   - newton         the whole Newton loop (contains factor + rhs_stamp +
///                    solve plus convergence checking; the remainder of
///                    the run's wall time is probe recording and element
///                    begin/end hooks)
///
/// ## RunTelemetry (one JSON object per corner)
/// Aggregated over every transient the scenario ran (a clean/disturbed
/// EMC pair merges two):
///
///   - phases                   TransientPhases above
///   - lu_factorizations        total LU count (== 1 per linear transient
///                              in the reuse/sparse modes — the paper's
///                              one-LU-per-run guarantee, now visible per
///                              corner)
///   - newton_iterations        total Newton iterations
///   - max_newton_iterations    worst single step
///   - steps                    accepted time steps (t >= 0)
///   - transient_runs           how many runTransient calls were merged
///   - pattern_realignments     sparse-pattern overflow recompiles (a
///                              dynamic stamp hit a structurally-new
///                              entry; see circuit/transient.h)
///   - shared_base_builds       base factorizations this run performed AND
///                              published to a SolverStateProvider (the
///                              one build of a numeric-base class)
///   - shared_base_reuses       base factorizations this run *skipped* by
///                              checking a shared one out instead (each is
///                              an LU that did not happen; see
///                              circuit/solver_state.h)
///   - shared_symbolic_builds   RCM orderings built and published
///   - shared_symbolic_reuses   RCM orderings checked out instead of built
///   - wall_seconds             scenario wall clock (set by the engine
///                              layer; the deliberately-unexported
///                              wall_seconds of sweep_result.h lands here)
///
///   - health                   NumericalHealth (obs/health.h): pivot /
///                              conditioning / residual / Newton-quality
///                              record, exported as the "health" object
///                              when collected (HealthOptions::collect)
///
/// Collection is opt-in per run (TransientOptions::telemetry); a null
/// pointer keeps the solver loops clock-free (one branch per span — see
/// obs/counters.h). The struct is plain data: merging is field-wise
/// addition so multi-transient scenarios aggregate naturally.

#include "obs/health.h"

namespace fdtdmm {
namespace obs {

/// Phase wall-time breakdown of runTransient; see the file comment.
struct TransientPhases {
  double stamp_static_seconds = 0.0;
  double factor_seconds = 0.0;
  double rhs_stamp_seconds = 0.0;
  double solve_seconds = 0.0;
  double newton_seconds = 0.0;

  TransientPhases& operator+=(const TransientPhases& o) {
    stamp_static_seconds += o.stamp_static_seconds;
    factor_seconds += o.factor_seconds;
    rhs_stamp_seconds += o.rhs_stamp_seconds;
    solve_seconds += o.solve_seconds;
    newton_seconds += o.newton_seconds;
    return *this;
  }
};

/// Per-corner solver telemetry; see the file comment for field meanings.
struct RunTelemetry {
  TransientPhases phases;
  long long lu_factorizations = 0;
  long long newton_iterations = 0;
  int max_newton_iterations = 0;
  long long steps = 0;
  long long transient_runs = 0;
  long long pattern_realignments = 0;
  long long shared_base_builds = 0;
  long long shared_base_reuses = 0;
  long long shared_symbolic_builds = 0;
  long long shared_symbolic_reuses = 0;
  double wall_seconds = 0.0;
  NumericalHealth health;

  /// Field-wise aggregation (wall_seconds adds too: it is "time spent",
  /// not "span of time", for a scenario that runs several transients).
  void merge(const RunTelemetry& o);
};

}  // namespace obs
}  // namespace fdtdmm
