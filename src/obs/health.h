#pragma once
/// \file health.h
/// Numerical-health monitoring: per-run records of how *trustworthy* a
/// solve was, complementing the timing-only telemetry of obs/telemetry.h.
///
/// The sweep platform (engine/sweep_runner.h) happily reports a corner as
/// "ok" the moment runTransient returns — but a Monte Carlo draw can land
/// on a near-singular MNA matrix, Newton can limp to convergence by
/// hitting the iteration cap with a barely-shrinking update, and a badly
/// conditioned system can turn 1e-16 roundoff into 1e-6 answer error
/// without any exception firing. This module gives every run a
/// NumericalHealth record answering four questions:
///
///   1. Was the factorization stable?  min |pivot| and the element-growth
///      factor max|U|/max|A| are tracked (always, they are free next to
///      the factorization) by LuFactorization, SparseLu, ComplexLu and
///      ComplexSparseLu and copied here after every factorization —
///      including factorizations *checked out* of the shared-state cache,
///      whose stats were recorded by the corner that built them.
///   2. How conditioned was the system?  A Hager-style 1-norm condition
///      estimate (estimateInverseNorm1) runs on the already-cached
///      factors: a handful of O(n) / O(n b) substitutions, never a
///      refactorization, and never more than once per run.
///   3. Did the answer actually satisfy the system?  One post-run relative
///      residual ||A x - b||inf / ||b||inf against the final time step's
///      matrix and RHS.
///   4. Did Newton converge honestly?  Per-iteration |dx| trajectories are
///      classified converged / stagnated / diverged; the worst step's
///      trajectory is kept (bounded) for forensics.
///
/// gradeHealth() folds the record against configurable HealthThresholds
/// into ok / warn / critical — the severity that SweepResult aggregates
/// and the live ProgressReporter (obs/progress.h) streams mid-sweep.
///
/// Collection is opt-in (HealthOptions::collect, default off) and rides
/// the existing telemetry channel: the record lives inside RunTelemetry,
/// so it flows scenario -> TaskWaveforms -> SweepRunRecord -> telemetry
/// JSON without new plumbing. The disabled path costs one branch per
/// collection site, and metrics CSV/JSON stay byte-identical either way.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "math/matrix.h"
#include "math/sparse_matrix.h"

namespace fdtdmm {
namespace obs {

/// Severity grade of a run (or an aggregate of runs). Ordered: larger is
/// worse, so merging takes the max.
enum class HealthSeverity { kOk = 0, kWarn = 1, kCritical = 2 };

/// Stable lower-case name used in telemetry JSON ("ok" / "warn" /
/// "critical").
const char* healthSeverityName(HealthSeverity s);

/// Grading thresholds. Defaults are deliberately loose: they flag systems
/// that are genuinely suspect in double precision, not merely imperfect.
struct HealthThresholds {
  double residual_warn = 1e-8;       ///< relative residual above this: warn
  double residual_critical = 1e-4;   ///< ... above this: critical
  double condition_warn = 1e10;      ///< 1-norm condition estimate: warn
  double condition_critical = 1e13;  ///< ... critical (~3 digits left)
  double growth_warn = 1e8;          ///< pivot growth max|U|/max|A|: warn
  double growth_critical = 1e12;
};

/// Per-run collection switches, carried by TransientOptions / AcOptions
/// (and pointed at by SolverSharing so a sweep configures every corner).
struct HealthOptions {
  /// Master switch. When false nothing is recorded and the solver paths
  /// pay exactly one branch per site. Collection also requires telemetry
  /// to be enabled (the record lives inside RunTelemetry).
  bool collect = false;
  /// Run the Hager condition estimator at end of run (a few extra
  /// substitutions on the cached factors). Meaningful only with collect.
  bool condition_estimate = true;
  HealthThresholds thresholds;
};

/// One step's Newton convergence classification.
enum class NewtonOutcome { kConverged, kStagnated, kDiverged };

/// The per-run health record; lives in RunTelemetry::health. Plain data,
/// merged field-wise (counts add, extrema take min/max) so
/// multi-transient scenarios aggregate exactly like the rest of the
/// telemetry.
struct NumericalHealth {
  /// True once any collection happened (distinguishes "healthy" from
  /// "never looked"). Merging ORs it.
  bool collected = false;

  /// Grade assigned by gradeHealth(); merging takes the worse grade.
  HealthSeverity severity = HealthSeverity::kOk;

  // -- factorization stability -------------------------------------------
  long long factorizations = 0;   ///< factorizations with stats recorded
  double min_abs_pivot = 0.0;     ///< smallest pivot across all of them
  double max_pivot_growth = 0.0;  ///< largest max|U|/max|A|

  // -- conditioning ------------------------------------------------------
  long long condition_estimates = 0;    ///< estimator invocations (<=1/run)
  double max_condition_estimate = 0.0;  ///< largest kappa_1 estimate

  // -- post-solve residual -----------------------------------------------
  long long residual_checks = 0;        ///< residual evaluations (<=1/run)
  double max_relative_residual = 0.0;   ///< largest ||Ax-b||inf/||b||inf

  // -- Newton convergence ------------------------------------------------
  long long newton_steps_converged = 0;
  long long newton_steps_stagnated = 0;  ///< cap hit, update not growing
  long long newton_steps_diverged = 0;   ///< cap hit, update growing
  /// |dx| per iteration of the worst step seen (most iterations; ties
  /// broken by larger final |dx|). Capped at kMaxTrajectory entries.
  std::vector<double> worst_newton_trajectory;

  static constexpr std::size_t kMaxTrajectory = 32;

  /// Records one factorization's pivot stats (call with minAbsPivot() /
  /// pivotGrowth() of any of the four LU classes).
  void recordFactorization(double min_pivot, double growth);

  /// Records one Newton step's trajectory (|dx| per iteration) and its
  /// outcome; keeps the trajectory if it is the worst so far.
  void recordNewtonStep(const std::vector<double>& trajectory, NewtonOutcome outcome);

  /// Field-wise aggregation (see struct comment).
  void merge(const NumericalHealth& o);
};

/// Folds the record against thresholds into a severity and stores it in
/// h.severity (monotone: never downgrades an already-worse grade).
/// Stagnated Newton steps grade warn; diverged grade critical.
void gradeHealth(NumericalHealth& h, const HealthThresholds& t);

/// Hager's 1-norm estimator of ||A^-1||_1 using only solves against an
/// existing factorization: `solve` must compute A x = b, `solveT`
/// A^T x = b (e.g. LuFactorization::solve / solveTranspose). At most 5
/// forward+transpose solve pairs; the estimate is a provable lower bound
/// on ||A^-1||_1 and in practice within a small factor of it. Multiply by
/// onesNormDense/onesNormSparse of A to estimate kappa_1(A).
using SolveFn = std::function<void(const Vector& b, Vector& x)>;
double estimateInverseNorm1(std::size_t n, const SolveFn& solve, const SolveFn& solveT);

/// ||A||_1 (max column abs-sum) of a dense matrix.
double matrixNorm1(const Matrix& a);

/// ||A||_1 of a finalized CSR matrix.
double matrixNorm1(const SparseMatrix& a);

}  // namespace obs
}  // namespace fdtdmm
