// Model identification walk-through: identify an RBF driver macromodel
// from the transistor-level reference device, save it to a model-library
// file, load it back, and validate it against the transistor-level device
// under a load it has never seen.
//
// Build & run:  ./model_identification [output_model_path]

#include <cstdio>
#include <string>

#include "circuit/transient.h"
#include "core/model_factory.h"
#include "devices/cmos_driver.h"
#include "math/stats.h"
#include "rbf/driver_model.h"
#include "rbf/model_io.h"

namespace {

using namespace fdtdmm;

Waveform transistorRun(const CmosDriverParams& device, double r_load) {
  Circuit c;
  const BitPattern pat("0110", 2e-9);
  auto drv = buildCmosDriver(c, device, [pat](double t) {
    return static_cast<double>(pat.levelAt(t));
  });
  c.addResistor(drv.pad, Circuit::kGround, r_load);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 8e-9;
  opt.settle_time = 4e-9;
  return runTransient(c, opt, {{"v", drv.pad, 0}}).at("v");
}

Waveform macromodelRun(std::shared_ptr<const RbfDriverModel> model, double r_load) {
  Circuit c;
  const BitPattern pat("0110", 2e-9);
  const int pad = c.addNode();
  c.addBehavioralPort(pad, Circuit::kGround,
                      std::make_shared<RbfDriverPort>(model, pat));
  c.addResistor(pad, Circuit::kGround, r_load);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 8e-9;
  opt.settle_time = 1e-9;
  return runTransient(c, opt, {{"v", pad, 0}}).at("v");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fdtdmm;
  const std::string path = argc > 1 ? argv[1] : "driver_model.fdtdmm";

  std::puts("# model_identification: transistor-level device -> RBF macromodel");
  const CmosDriverParams device;  // the 1.8 V reference driver

  std::puts("# step 1: identification (multilevel excitation + two-load weights)");
  const RbfDriverModel model = buildDriverMacromodel(device);
  std::printf("#   Ts = %.0f ps, submodel centers: up=%zu down=%zu\n",
              model.ts * 1e12, model.up->centerCount(), model.down->centerCount());

  std::printf("# step 2: save to model library file '%s' and reload\n", path.c_str());
  saveDriverModel(model, path);
  const RbfDriverModel loaded = loadDriverModel(path);
  auto shared = std::make_shared<const RbfDriverModel>(loaded);

  std::puts("# step 3: validation under an unseen load (68 ohm to ground)");
  const Waveform ref = transistorRun(device, 68.0);
  const Waveform mm = macromodelRun(shared, 68.0);
  std::printf("#   NRMSE(macromodel vs transistor-level) = %.4f\n",
              nrmse(mm.samples(), ref.samples()));

  std::puts("t_ns,v_transistor,v_macromodel");
  for (double t = 0.0; t <= 8e-9; t += 40e-12) {
    std::printf("%.3f,%.4f,%.4f\n", t * 1e9, ref.value(t), mm.value(t));
  }
  return 0;
}
