// Scenario-sweep quick-start: what used to be "write a new main() per
// analysis" is now a declarative spec. This example sweeps the paper's
// validation line over impedance corners and far-end loads on the 1D FDTD
// engine, runs everything across a thread pool with one shared macromodel
// cache, and exports the per-corner signal-integrity metrics.
//
// Build & run:  ./example_scenario_sweep
// Outputs:      sweep_results.csv, sweep_results.json (schema documented in
//               src/engine/sweep_result.h)

#include <cstdio>

#include "engine/sweep_runner.h"

int main() {
  using namespace fdtdmm;

  std::puts("# scenario sweep: Zc x far-end-load corner analysis (1D FDTD)");

  SweepSpec spec;
  spec.kind = TaskKind::kTline;
  spec.engine = TlineEngine::kFdtd1d;
  spec.base_tline.pattern = "010";
  spec.base_tline.bit_time = 2e-9;
  spec.base_tline.t_stop = 8e-9;
  spec.zc_values = {90.0, 110.0, 131.0, 150.0};
  spec.loads = {FarEndLoad::kLinearRc, FarEndLoad::kReceiver};
  spec.rc_loads = {{500.0, 1e-12}, {100.0, 5e-12}, {50.0, 10e-12}};
  std::printf("# grid: %zu simulation tasks\n", spec.count());

  std::puts("# identifying macromodels once (shared by every task)...");
  SweepOptions opt;
  opt.workers = 0;  // all hardware threads
  SweepRunner runner(opt);
  const SweepResult result = runner.run(spec);

  std::printf("# %zu/%zu runs ok on %zu workers in %.2f s\n", result.okCount(),
              result.runs.size(), result.workers, result.wall_seconds);
  std::puts("index,eye_height,overshoot,far_end_delay_ns,label");
  for (const SweepRunRecord& run : result.runs) {
    if (!run.ok) {
      std::printf("%zu,FAILED: %s\n", run.index, run.error.c_str());
      continue;
    }
    std::printf("%zu,%.3f,%.3f,%.3f,\"%s\"\n", run.index,
                run.metrics.eye.eye_height, run.metrics.overshoot,
                run.metrics.far_end_delay * 1e9, run.label.c_str());
  }

  writeSweepCsv(result, "sweep_results.csv");
  writeSweepJson(result, "sweep_results.json");
  std::puts("# wrote sweep_results.csv and sweep_results.json");
  return 0;
}
