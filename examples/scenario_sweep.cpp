// Scenario-sweep quick-start: what used to be "write a new main() per
// analysis" is now a scenario name plus declarative axes. This example
// sweeps the paper's validation line over impedance corners and far-end
// loads on the 1D FDTD engine, runs everything across a thread pool with
// one shared macromodel cache, and exports the per-corner signal-integrity
// metrics. The "tline" family comes from ScenarioRegistry::global(); any
// family registered there sweeps the same way.
//
// Build & run:  ./example_scenario_sweep [--trace=trace.json] [--progress] [--health]
// Outputs:      sweep_results.csv, sweep_results.json (schema documented in
//               src/engine/sweep_result.h), sweep_telemetry.json (schema in
//               src/engine/sweep_telemetry.h), and — with --trace= or
//               FDTDMM_TRACE set — a Chrome trace loadable in Perfetto.

#include <cstdio>

#include "engine/sweep_runner.h"
#include "sweep_cli.h"

int main(int argc, char** argv) {
  using namespace fdtdmm;

  sweepcli::Cli cli = sweepcli::init(argc, argv);

  std::puts("# scenario sweep: Zc x far-end-load corner analysis (1D FDTD)");

  // Generic form: a registry name, base overrides, and axes. Multi-param
  // corners (here the far-end RC load) are a ParamAxis binding several
  // parameters per point, conditional on the load type being "rc".
  SweepSpec spec;
  spec.scenario = "tline";
  spec.set("engine", std::string("fdtd1d"));
  spec.set("pattern", std::string("010"));
  spec.set("bit_time", 2e-9);
  spec.set("t_stop", 8e-9);
  spec.axis("zc", {90.0, 110.0, 131.0, 150.0});
  spec.axisStrings("load", {"rc", "receiver"});
  ParamAxis rc_axis;
  rc_axis.name = "rc_load";
  rc_axis.only_when_param = "load";
  rc_axis.only_when_value = std::string("rc");
  rc_axis.points = {{{{"load_r", 500.0}, {"load_c", 1e-12}}},
                    {{{"load_r", 100.0}, {"load_c", 5e-12}}},
                    {{{"load_r", 50.0}, {"load_c", 10e-12}}}};
  spec.axis(rc_axis);
  std::printf("# grid: %zu simulation tasks\n", spec.count());

  std::puts("# identifying macromodels once (shared by every task)...");
  SweepRunnerOptions opt;
  opt.workers = 0;  // all hardware threads
  cli.apply(opt);
  SweepRunner runner(opt);
  const SweepResult result = runner.run(spec);

  std::printf("# %zu/%zu runs ok on %zu workers in %.2f s\n", result.okCount(),
              result.runs.size(), result.workers, result.wall_seconds);
  std::puts("index,eye_height,overshoot,far_end_delay_ns,label");
  for (const SweepRunRecord& run : result.runs) {
    if (!run.ok) {
      std::printf("%zu,FAILED: %s\n", run.index, run.error.c_str());
      continue;
    }
    std::printf("%zu,%.3f,%.3f,%.3f,\"%s\"\n", run.index,
                run.metrics.eye.eye_height, run.metrics.overshoot,
                run.metrics.far_end_delay * 1e9, run.label.c_str());
  }

  sweepcli::exportAndFinish(result, "sweep", cli);
  return 0;
}
