// Signal-integrity study: sweep far-end loads on the paper's validation
// line and compare driver/receiver waveforms across two engines (SPICE
// with RBF macromodels vs 1D FDTD). Demonstrates the load-insensitivity of
// the macromodels — the property the paper's Fig. 4/5 is built on.
//
// Build & run:  ./signal_integrity

#include <cstdio>
#include <vector>

#include "core/tline_scenario.h"
#include "math/stats.h"

int main() {
  using namespace fdtdmm;

  std::puts("# signal_integrity: far-end load sweep on the 131-ohm line");
  const auto driver = defaultDriverModel();
  const auto receiver = defaultReceiverModel();

  struct LoadCase {
    const char* name;
    FarEndLoad load;
    double r, c;
  };
  const std::vector<LoadCase> cases = {
      {"rc_500ohm_1pF", FarEndLoad::kLinearRc, 500.0, 1e-12},
      {"rc_150ohm_2pF", FarEndLoad::kLinearRc, 150.0, 2e-12},
      {"rc_1kohm_0.5pF", FarEndLoad::kLinearRc, 1000.0, 0.5e-12},
      {"rbf_receiver", FarEndLoad::kReceiver, 0.0, 0.0},
  };

  std::puts("load,engine,v_far_peak,v_far_end,nrmse_vs_spice");
  for (const LoadCase& lc : cases) {
    TlineScenario cfg;
    cfg.load = lc.load;
    if (lc.load == FarEndLoad::kLinearRc) {
      cfg.load_r = lc.r;
      cfg.load_c = lc.c;
    }
    const EngineRun spice = runSpiceRbfTline(cfg, driver, receiver);
    const EngineRun fdtd = runFdtd1dTline(cfg, driver, receiver);

    auto peak = [](const Waveform& w) {
      double m = -1e9;
      for (double v : w.samples()) m = std::max(m, v);
      return m;
    };
    // Common-axis comparison.
    Vector a, b;
    for (double t = 0.0; t <= cfg.t_stop; t += 10e-12) {
      a.push_back(fdtd.v_far.value(t));
      b.push_back(spice.v_far.value(t));
    }
    std::printf("%s,spice_rbf,%.4f,%.4f,-\n", lc.name, peak(spice.v_far),
                spice.v_far.samples().back());
    std::printf("%s,fdtd1d,%.4f,%.4f,%.4f\n", lc.name, peak(fdtd.v_far),
                fdtd.v_far.samples().back(), nrmse(a, b));
  }
  std::puts("# NRMSE < ~0.05 across all loads: the macromodel is load-insensitive.");
  return 0;
}
