// EMC susceptibility study: the Fig. 6/7 PCB with an impinging plane-wave
// pulse. Runs a reduced-size board with and without the incident field and
// prints both termination waveforms — the paper's "complex task of
// predicting incident-field coupling effects on interconnected networks
// loaded by real-world components."
//
// Build & run:  ./emc_field_coupling

#include <cstdio>

#include "core/pcb_scenario.h"

int main() {
  using namespace fdtdmm;

  std::puts("# emc_field_coupling: PCB with driver/receiver + incident pulse");
  const auto driver = defaultDriverModel();
  const auto receiver = defaultReceiverModel();

  PcbScenario cfg;
  cfg.board_cells = 60;   // reduced board (full-size run: bench_fig7)
  cfg.strip_len = 44;
  cfg.margin = 8;
  cfg.cell = 0.8e-3;
  cfg.t_stop = 5e-9;

  std::puts("# running without incident field...");
  const PcbRun clean = runPcbScenario(cfg, driver, receiver);
  std::puts("# running with 2 kV/m Gaussian plane wave (9.2 GHz bandwidth)...");
  cfg.with_incident = true;
  const PcbRun field = runPcbScenario(cfg, driver, receiver);

  std::printf("# wall: clean %.1fs, with field %.1fs; max Newton iters %d/%d\n",
              clean.wall_seconds, field.wall_seconds,
              clean.max_newton_iterations, field.max_newton_iterations);
  std::puts("t_ns,v_near_clean,v_far_clean,v_near_field,v_far_field");
  for (double t = 0.0; t <= cfg.t_stop; t += 25e-12) {
    std::printf("%.3f,%.4f,%.4f,%.4f,%.4f\n", t * 1e9, clean.v_near.value(t),
                clean.v_far.value(t), field.v_near.value(t), field.v_far.value(t));
  }
  return 0;
}
