// EMC susceptibility study on the circuit path: the paper's "complex task
// of predicting incident-field coupling effects on interconnects loaded by
// real-world components", expressed as one registered scenario family.
// The clean/disturbed pair that used to be two hand-rolled 3D FDTD board
// runs is now a 2-point amplitude axis of the "emc" family: the RBF driver
// macromodel drives a routed trace, a plane-wave pulse couples in through
// the Taylor/Agrawal distributed sources, and the susceptibility metrics
// (peak induced noise, noise-margin violations, eye degradation) fall out
// of differencing the pair. The 3D FDTD PcbScenario incident path remains
// available as the cross-validation reference (tests/test_emc_fdtd_xval).
//
// Build & run:  ./example_emc_field_coupling

#include <cstdio>

#include "emc/susceptibility.h"
#include "engine/sweep_runner.h"

int main() {
  using namespace fdtdmm;

  std::puts("# emc_field_coupling: driven trace +/- incident pulse (MNA engine)");

  const double t_stop = 10e-9;
  SweepSpec spec;
  spec.scenario = "emc";
  spec.set("pattern", std::string("0101"));
  spec.set("bit_time", 2e-9);
  spec.set("t_stop", t_stop);
  spec.set("segments", 32.0);
  spec.set("pulse_t0", 5e-9);
  // Clean run and the paper's Fig. 7 illumination as one amplitude axis.
  spec.axis("amplitude", {0.0, 2e3});

  std::puts("# identifying the driver macromodel once...");
  SweepRunnerOptions opt;
  opt.workers = 0;
  opt.keep_waveforms = true;  // the pair is differenced below
  SweepRunner runner(opt);
  const SweepResult result = runner.run(spec);
  if (result.okCount() != 2) {
    for (const SweepRunRecord& run : result.runs)
      if (!run.ok) std::printf("# FAILED %zu: %s\n", run.index, run.error.c_str());
    return 1;
  }

  const TaskWaveforms& clean = result.runs[0].waves;
  const TaskWaveforms& field = result.runs[1].waves;

  const BitPattern pattern("0101", 2e-9);
  SusceptibilityOptions sopt;
  sopt.noise_margin = 0.2;
  const SusceptibilityMetrics m =
      computeSusceptibility(clean.v_far, field.v_far, pattern, sopt);
  std::printf("# peak induced noise at the receiver pad: %.1f mV\n",
              1e3 * m.peak_noise);
  std::printf("# time above the %.0f mV noise margin:   %.2f ns\n",
              1e3 * sopt.noise_margin, 1e9 * m.violation_duration);
  if (m.eye_valid)
    std::printf("# eye height clean %.3f V -> disturbed %.3f V (degradation %.1f mV)\n",
                m.eye_height_clean, m.eye_height_disturbed,
                1e3 * m.eye_degradation);

  std::puts("t_ns,v_far_clean,v_far_field,noise");
  for (double t = 0.0; t <= t_stop; t += 25e-12) {
    const double vc = clean.v_far.value(t);
    const double vf = field.v_far.value(t);
    std::printf("%.3f,%.4f,%.4f,%.4f\n", t * 1e9, vc, vf, vf - vc);
  }
  return 0;
}
