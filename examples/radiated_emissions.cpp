// Radiated-emissions study: the paper names "radiation analysis (through
// standard post-processing of transient fields computed during the FDTD
// simulation)" as the second EMC output of the hybrid method. This example
// drives the two-strip line with the RBF driver macromodel and computes
// the far-field radiation pattern of the switching transient at the clock
// harmonics via the near-to-far-field transform.
//
// Build & run:  ./radiated_emissions

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/model_factory.h"
#include "fdtd/solver.h"
#include "rbf/driver_model.h"
#include "signal/linear_ports.h"

int main() {
  using namespace fdtdmm;
  constexpr double kPi = 3.14159265358979323846;

  std::puts("# radiated_emissions: far-field pattern of the switching line");
  const auto driver = defaultDriverModel();

  // A shortened version of the Fig. 3 line (keeps the example quick).
  GridSpec spec;
  spec.nx = 100;
  spec.ny = 30;
  spec.nz = 30;
  spec.dx = spec.dy = spec.dz = 1e-3;
  Grid3 grid(spec);
  const std::size_t x0 = 14, x1 = 86, jc = 15, k0 = 13, k1 = 16;
  grid.pecPlateZ(k0, x0, x1, 13, 17);
  grid.pecPlateZ(k1, x0, x1, 13, 17);
  grid.pecWireZ(x0, jc, k0, k1 - 1);
  grid.pecWireZ(x1, jc, k0, k1 - 1);
  grid.bake();

  FdtdSolverOptions opt;
  opt.boundary = BoundaryKind::kCpml;
  FdtdSolver solver(std::move(grid), opt);

  const BitPattern pattern("0101", 2e-9);
  LumpedPortSpec drv;
  drv.i = x0;
  drv.j = jc;
  drv.k = k1 - 1;
  drv.sign = -1;
  solver.addLumpedPort(drv, std::make_shared<RbfDriverPort>(driver, pattern));
  LumpedPortSpec load = drv;
  load.i = x1;
  solver.addLumpedPort(load, std::make_shared<ResistorPort>(500.0));

  // Huygens box just inside the CPML; analyze the first clock harmonics.
  NtffSpec ntff_spec;
  ntff_spec.i0 = 10;
  ntff_spec.i1 = 90;
  ntff_spec.j0 = 10;
  ntff_spec.j1 = 20;
  ntff_spec.k0 = 10;
  ntff_spec.k1 = 20;
  ntff_spec.frequencies_hz = {0.25e9, 0.75e9, 1.25e9};  // odd harmonics of 250 MHz
  NtffRecorder* ntff = solver.addNtffSurface(ntff_spec);

  std::puts("# running 8 ns of the '0101' pattern...");
  solver.runUntil(8e-9);

  std::puts("theta_deg,U_f1,U_f2,U_f3  (W/sr, phi = 0 cut)");
  for (int th_deg = 10; th_deg <= 170; th_deg += 20) {
    const double th = th_deg * kPi / 180.0;
    std::printf("%d,%.3e,%.3e,%.3e\n", th_deg,
                ntff->farField(0, th, 0.0).intensity(),
                ntff->farField(1, th, 0.0).intensity(),
                ntff->farField(2, th, 0.0).intensity());
  }
  std::puts("# higher harmonics radiate more strongly (the line is a better");
  std::puts("# antenna at shorter wavelengths) — the standard EMC signature.");
  return 0;
}
