#pragma once
// Shared CLI plumbing for the sweep example programs (scenario_sweep,
// crosstalk_sweep, emc_sweep). Every sweep example speaks the same
// protocol — an optional --trace=PATH flag, three export files named
// <prefix>_results.csv / <prefix>_results.json / <prefix>_telemetry.json,
// and "# wrote ..." announcements the CI smoke steps grep for — so the
// protocol lives here once instead of being copy-pasted per example.

#include <cstdio>
#include <string>

#include "engine/sweep_result.h"
#include "engine/sweep_telemetry.h"
#include "obs/trace.h"

namespace sweepcli {

// Parses --trace=PATH from argv, activates Chrome-trace capture when
// present, and announces it. Returns the trace path ("" when tracing is
// off) for the matching exportAndFinish call.
inline std::string initTracing(int argc, char** argv) {
  const std::string trace_path = fdtdmm::obs::initTraceFromArgs(argc, argv);
  if (!trace_path.empty())
    std::printf("# tracing to %s\n", trace_path.c_str());
  return trace_path;
}

// Human-readable cache/pool effectiveness footer: the headline numbers a
// user scans after a sweep without opening the telemetry JSON. Stats are
// the per-sweep deltas SweepRunner already computed.
inline void printStatsFooter(const fdtdmm::SweepResult& result) {
  const fdtdmm::SolverStateCacheStats& sc = result.solver_cache;
  const fdtdmm::ResultCacheStats& rc = result.result_cache;
  const fdtdmm::ThreadPoolStats& pool = result.pool;
  std::printf("# solver_cache: symbolic %lld hit / %lld miss, numeric %lld hit / %lld miss",
              sc.symbolic_hits, sc.symbolic_misses, sc.numeric_hits, sc.numeric_misses);
  if (sc.refused_inserts) std::printf(", %lld refused", sc.refused_inserts);
  std::printf("\n");
  std::printf("# result_cache: %lld hit / %lld miss, %lld stored", rc.hits,
              rc.misses, rc.inserts);
  if (rc.refused_inserts) std::printf(", %lld refused", rc.refused_inserts);
  std::printf("\n");
  std::printf("# pool: %zu workers, %lld tasks, queue high-water %zu, "
              "%.3f s queued, %.3f s wall\n",
              result.workers, pool.submitted, pool.queue_high_water,
              pool.queue_wait_seconds, result.wall_seconds);
}

// Writes the three standard export files for `prefix`, announces them,
// prints the stats footer, and finalizes the optional trace started by
// initTracing.
inline void exportAndFinish(const fdtdmm::SweepResult& result,
                            const std::string& prefix,
                            const std::string& trace_path) {
  const std::string csv = prefix + "_results.csv";
  const std::string json = prefix + "_results.json";
  const std::string telemetry = prefix + "_telemetry.json";
  fdtdmm::writeSweepCsv(result, csv);
  fdtdmm::writeSweepJson(result, json);
  fdtdmm::writeSweepTelemetryJson(result, telemetry);
  std::printf("# wrote %s, %s, %s\n", csv.c_str(), json.c_str(),
              telemetry.c_str());
  printStatsFooter(result);
  if (!fdtdmm::obs::shutdownTrace().empty())
    std::printf("# wrote trace %s\n", trace_path.c_str());
}

}  // namespace sweepcli
