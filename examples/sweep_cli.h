#pragma once
// Shared CLI plumbing for the sweep example programs (scenario_sweep,
// crosstalk_sweep, emc_sweep, mc_tolerance_sweep, ac_sweep). Every sweep
// example speaks the same protocol — optional --trace=PATH / --progress /
// --health flags, three export files named <prefix>_results.csv /
// <prefix>_results.json / <prefix>_telemetry.json, and "# wrote ..."
// announcements the CI smoke steps grep for — so the protocol lives here
// once instead of being copy-pasted per example.

#include <cstdio>
#include <cstring>
#include <string>

#include "engine/sweep_result.h"
#include "engine/sweep_runner.h"
#include "engine/sweep_telemetry.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace sweepcli {

// Parsed shared CLI state. `trace` is the RAII handle to the optional
// Chrome-trace session: its destructor flushes and tears the session down,
// so an example that exits early (error path, uncaught exception unwind)
// still leaves a complete, Perfetto-loadable trace behind.
struct Cli {
  fdtdmm::obs::ScopedTrace trace;
  bool progress = false;  ///< --progress: live `# progress:` stream on stderr
  bool health = false;    ///< --health: per-corner numerical-health records

  // Applies the observability flags to a runner configuration. --progress
  // implies health collection: the live stream's warn/critical counts are
  // only meaningful when corners are actually graded.
  void apply(fdtdmm::SweepRunnerOptions& opt) const {
    if (progress) opt.progress.enabled = true;
    if (progress || health) opt.health.collect = true;
  }
};

// Parses the shared flags, activates Chrome-trace capture when requested,
// and announces it.
inline Cli init(int argc, char** argv) {
  Cli cli;
  cli.trace = fdtdmm::obs::initTraceFromArgs(argc, argv);
  if (cli.trace.enabled())
    std::printf("# tracing to %s\n", cli.trace.path().c_str());
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--progress") == 0) cli.progress = true;
    if (std::strcmp(argv[i], "--health") == 0) cli.health = true;
  }
  return cli;
}

// Human-readable effectiveness footer: one summary line plus the canonical
// counters document (obs::countersJson over sweepCounters — the same slots
// and formatting as the telemetry JSON's "counters" section and the bench
// summaries), plus a health roll-up line when collection was on.
inline void printStatsFooter(const fdtdmm::SweepResult& result) {
  std::printf("# pool: %zu workers, %lld tasks, queue high-water %zu, %.3f s wall\n",
              result.workers, result.pool.submitted, result.pool.queue_high_water,
              result.wall_seconds);
  std::printf("# counters: %s\n",
              fdtdmm::obs::countersJson(fdtdmm::sweepCounters(result)).c_str());
  const fdtdmm::SweepResult::HealthSummary hs = result.healthSummary();
  if (hs.collected_corners > 0) {
    std::printf("# health: %zu corner(s) graded, %zu warn, %zu critical, "
                "overall %s",
                hs.collected_corners, hs.warn_corners, hs.critical_corners,
                fdtdmm::obs::healthSeverityName(hs.severity));
    if (hs.worst_residual_corner != static_cast<std::size_t>(-1))
      std::printf(", worst residual %.3g (corner %zu)", hs.worst_residual,
                  hs.worst_residual_corner);
    if (hs.worst_condition_corner != static_cast<std::size_t>(-1))
      std::printf(", worst condition %.3g (corner %zu)", hs.worst_condition,
                  hs.worst_condition_corner);
    std::printf("\n");
  }
}

// Per-corner solver-phase table on stdout (assemble/factor/solve split, LU
// and step counts): the quick "where did each corner's time go" view that
// used to be hand-rolled inside emc_sweep, now shared by any example that
// wants it. Skips failed corners.
inline void printPhaseTable(const fdtdmm::SweepResult& result) {
  std::puts("# per-corner solver phases");
  std::puts("index,assemble_ms,factor_ms,solve_ms,lu,steps,label");
  for (const fdtdmm::SweepRunRecord& run : result.runs) {
    if (!run.ok) continue;
    const fdtdmm::obs::TransientPhases& p = run.telemetry.phases;
    std::printf("%zu,%.3f,%.3f,%.3f,%lld,%lld,\"%s\"\n", run.index,
                1e3 * (p.stamp_static_seconds + p.rhs_stamp_seconds),
                1e3 * p.factor_seconds, 1e3 * p.solve_seconds,
                run.telemetry.lu_factorizations, run.telemetry.steps,
                run.label.c_str());
  }
}

// Writes the three standard export files for `prefix`, announces them,
// prints the stats footer, and flushes the optional trace now (the handle's
// destructor remains as the crash safety net).
inline void exportAndFinish(const fdtdmm::SweepResult& result,
                            const std::string& prefix, Cli& cli) {
  const std::string csv = prefix + "_results.csv";
  const std::string json = prefix + "_results.json";
  const std::string telemetry = prefix + "_telemetry.json";
  fdtdmm::writeSweepCsv(result, csv);
  fdtdmm::writeSweepJson(result, json);
  fdtdmm::writeSweepTelemetryJson(result, telemetry);
  std::printf("# wrote %s, %s, %s\n", csv.c_str(), json.c_str(),
              telemetry.c_str());
  printStatsFooter(result);
  if (cli.trace.enabled()) {
    cli.trace.flush();
    std::printf("# wrote trace %s\n", cli.trace.path().c_str());
  }
}

}  // namespace sweepcli
