// EMC immunity sweep: plane-wave angle x amplitude grid over the "emc"
// scenario family, batched by the parallel sweep engine. This is the
// workload the ROADMAP's "EMC susceptibility family" item asked for: the
// paper's one-at-a-time incident-field board runs become a declarative
// grid at MNA speed (a quiescent victim trace needs no macromodels at
// all, so every corner is a pure field-coupled transient).
//
// Build & run:  ./example_emc_sweep [--trace=trace.json] [--progress] [--health]
// Outputs:      emc_results.csv, emc_results.json, emc_telemetry.json
//               (+ optional Chrome trace)

#include <cmath>
#include <cstdio>

#include "engine/sweep_runner.h"
#include "sweep_cli.h"

int main(int argc, char** argv) {
  using namespace fdtdmm;

  sweepcli::Cli cli = sweepcli::init(argc, argv);

  std::puts("# emc sweep: incidence angle x amplitude (quiescent victim trace)");

  SweepSpec spec;
  spec.scenario = "emc";
  spec.set("drive", std::string("none"));  // quiescent line: no macromodels
  spec.set("t_stop", 6e-9);
  spec.set("segments", 32.0);
  spec.set("pulse_t0", 2e-9);
  spec.axis("theta", {20.0, 40.0, 60.0, 90.0});
  spec.axis("amplitude", {500.0, 1000.0, 2000.0});
  spec.axisStrings("solver", {"reuse_lu", "sparse"});
  std::printf("# grid: %zu simulation tasks\n", spec.count());

  SweepRunnerOptions opt;
  opt.workers = 0;  // all hardware threads
  cli.apply(opt);
  SweepRunner runner(opt);
  const SweepResult result = runner.run(spec);

  std::printf("# %zu/%zu runs ok on %zu workers in %.2f s\n", result.okCount(),
              result.runs.size(), result.workers, result.wall_seconds);
  std::puts("index,induced_peak_mV,label");
  for (const SweepRunRecord& run : result.runs) {
    if (!run.ok) {
      std::printf("%zu,FAILED: %s\n", run.index, run.error.c_str());
      continue;
    }
    const double peak = 1e3 * std::max(std::abs(run.metrics.v_far_max),
                                       std::abs(run.metrics.v_far_min));
    std::printf("%zu,%.2f,\"%s\"\n", run.index, peak, run.label.c_str());
  }

  // Where the solver time went, per corner (shared exporter): these are
  // linear runs, and amplitude/theta only reach the RHS — so with solver-
  // state sharing (default-on) each solver mode factors its base exactly
  // once for the whole grid: one corner per mode shows lu=1, every other
  // corner shows lu=0 and rides the shared factorization.
  sweepcli::printPhaseTable(result);

  // The sweep-wide view of the same economy.
  std::printf("# solver cache: %lld base factorizations shared across %lld reuses\n",
              result.solver_cache.numeric_misses, result.solver_cache.numeric_hits);

  sweepcli::exportAndFinish(result, "emc", cli);
  return 0;
}
