// Quickstart: put an RBF driver macromodel at one end of a transmission
// line inside a 1D FDTD solver and print the termination voltages.
//
// This is the smallest end-to-end use of the library:
//   1. obtain device macromodels (identified once from the transistor-level
//      reference devices, then cached);
//   2. attach them to a field solver through the PortModel interface;
//   3. run and inspect waveforms.
//
// Build & run:  ./quickstart

#include <cstdio>

#include "core/model_factory.h"
#include "fdtd1d/line1d.h"
#include "rbf/driver_model.h"
#include "signal/linear_ports.h"

int main() {
  using namespace fdtdmm;

  std::puts("# quickstart: RBF driver + 131-ohm line + RC load (1D FDTD)");
  std::puts("# identifying macromodels from the transistor-level reference...");
  const auto driver = defaultDriverModel();

  // The paper's validation line: Zc = 131 ohm, Td = 0.4 ns.
  Line1dConfig line_cfg;
  line_cfg.zc = 131.0;
  line_cfg.td = 0.4e-9;
  line_cfg.cells = 160;

  // Near end: the driver macromodel forcing '010' at 2 ns bit time.
  const BitPattern pattern("010", 2e-9);
  auto near = std::make_shared<RbfDriverPort>(driver, pattern);
  // Far end: 1 pF || 500 ohm.
  auto far = std::make_shared<ParallelRcPort>(500.0, 1e-12);

  Fdtd1dLine line(line_cfg, near, far);
  const auto result = line.run(5e-9);

  std::printf("# dt = %.3g s, steps = %zu, max Newton iterations = %d\n",
              line.dt(), result.steps, result.max_newton_iterations);
  std::puts("t_ns,v_near,v_far");
  for (double t = 0.0; t <= 5e-9; t += 50e-12) {
    std::printf("%.3f,%.4f,%.4f\n", t * 1e9, result.v_near.value(t),
                result.v_far.value(t));
  }
  return 0;
}
