// Monte Carlo sweeps end to end, on the two workloads the stochastic axes
// were built for:
//
//  1. Manufacturing tolerance (signal integrity): the coupled-line
//     crosstalk scenario under Latin-hypercube draws of its fabrication-
//     sensitive parameters (line length, coupling, terminations), grouped
//     by nominal coupling corner. The ensemble layer reports quantiles of
//     the victim's crosstalk peak and the probability of exceeding a
//     200 mV noise budget — the yield-style answer a worst-case corner
//     sweep cannot give.
//
//  2. Random illumination (EMC immunity): the quiescent-line
//     susceptibility scenario under uniform draws of the incident wave's
//     arrival angles and polarization, with common random numbers pairing
//     the draws across the two amplitude corners so their comparison is
//     sampling-noise-free. The incident field enters the MNA system
//     through RHS sources only, so the WHOLE ensemble reuses one base LU
//     factorization — the run fails if more than one is performed.
//
// Build & run:  ./example_mc_tolerance_sweep [--trace=trace.json] [--progress] [--health]
// Outputs:      mc_results.csv, mc_results.json, mc_telemetry.json,
//               mc_ensemble.csv, mc_ensemble.json,
//               mc_emc_ensemble.csv, mc_emc_ensemble.json
//               (+ optional Chrome trace)

#include <cstdio>

#include "engine/ensemble_stats.h"
#include "engine/sweep_runner.h"
#include "sweep_cli.h"

int main(int argc, char** argv) {
  using namespace fdtdmm;

  sweepcli::Cli cli = sweepcli::init(argc, argv);

  // --- Part 1: crosstalk manufacturing-tolerance ensemble ---------------
  std::puts("# mc sweep 1: crosstalk yield under manufacturing tolerance");

  SweepSpec spec;
  spec.scenario = "crosstalk";
  spec.set("pattern", std::string("010"));
  spec.set("bit_time", 2e-9);
  spec.set("t_stop", 6e-9);
  spec.set("segments", 16.0);
  spec.axis("coupling", {0.1, 0.3});  // nominal coupling corners (grouping)
  StochasticAxis tol;
  tol.name = "tol";
  tol.params = {
      // +/- 5% line length at 3 sigma, fab spread of the terminations.
      truncatedNormalParam("line_length", 0.1, 0.0017, 0.095, 0.105),
      truncatedNormalParam("victim_r_far", 50.0, 2.5, 40.0, 60.0),
      uniformParam("agg_load_c", 0.5e-12, 2e-12),
  };
  tol.samples = 25;
  tol.seed = 2026;
  tol.sampling = McSampling::kLatinHypercube;
  spec.stochasticAxis(tol);

  const ExpandedSweep expanded = spec.expandDetailed();
  std::printf("# ensemble: %zu samples x %zu corners = %zu tasks\n",
              tol.samples, expanded.group_count, expanded.tasks.size());

  std::puts("# identifying the driver macromodel once (shared)...");
  SweepRunnerOptions opt;
  opt.workers = 0;  // all hardware threads
  cli.apply(opt);
  SweepRunner runner(opt);
  const SweepResult result = runner.run(expanded.tasks);
  std::printf("# %zu/%zu runs ok on %zu workers in %.2f s\n", result.okCount(),
              result.runs.size(), result.workers, result.wall_seconds);

  EnsembleOptions eopt;
  eopt.metrics = {"v_far_abs_peak", "settling_time"};
  eopt.quantiles = {0.05, 0.5, 0.95};
  eopt.exceedances = {{"v_far_abs_peak", 0.2, /*above=*/true}};
  const EnsembleStats stats = computeEnsembleStats(result, expanded, eopt);
  writeEnsembleCsv(stats, "mc_ensemble.csv");
  writeEnsembleJson(stats, "mc_ensemble.json");
  std::puts("# wrote mc_ensemble.csv, mc_ensemble.json");

  std::puts("corner,samples,xtalk_q05_mV,xtalk_med_mV,xtalk_q95_mV,P[>200mV]");
  for (const GroupEnsemble& g : stats.groups) {
    const MetricEnsemble& peak = g.metrics[0];
    std::printf("\"%s\",%zu,%.2f,%.2f,%.2f,%.2f\n", g.label.c_str(), g.samples,
                1e3 * peak.quantile_values[0], 1e3 * peak.quantile_values[1],
                1e3 * peak.quantile_values[2], g.exceedances[0].probability);
  }

  // --- Part 2: EMC random-illumination immunity (one factorization) -----
  std::puts("# mc sweep 2: quiescent-line immunity under random illumination");

  SweepSpec emc;
  emc.scenario = "emc";
  emc.set("pattern", std::string("010"));
  emc.set("bit_time", 1e-9);
  emc.set("t_stop", 4e-9);
  emc.set("dt", 10e-12);
  emc.set("segments", 16.0);
  emc.set("pulse_t0", 1.5e-9);
  emc.set("bandwidth", 4e9);
  emc.set("drive", std::string("none"));  // quiescent line: victim only
  emc.axis("amplitude", {1e3, 2e3});      // immunity vs field strength
  StochasticAxis field;
  field.name = "field";
  field.params = {uniformParam("theta", 20.0, 160.0),
                  uniformParam("phi", 0.0, 360.0),
                  uniformParam("pol_theta", 0.05, 1.0)};
  field.samples = 32;
  field.seed = 7;
  field.sampling = McSampling::kLatinHypercube;
  // Same illumination draws for both amplitude corners: their immunity
  // comparison differences out the sampling noise entirely.
  field.common_random_numbers = true;
  emc.stochasticAxis(field);

  const ExpandedSweep emc_expanded = emc.expandDetailed();
  std::printf("# ensemble: %zu illuminations x %zu amplitudes = %zu tasks\n",
              field.samples, emc_expanded.group_count,
              emc_expanded.tasks.size());

  SweepRunnerOptions emc_opt;
  emc_opt.workers = 0;
  emc_opt.model_cache = runner.cache();  // share the identified models
  cli.apply(emc_opt);
  SweepRunner emc_runner(emc_opt);
  const SweepResult emc_result = emc_runner.run(emc_expanded.tasks);
  std::printf("# %zu/%zu runs ok on %zu workers in %.2f s\n",
              emc_result.okCount(), emc_result.runs.size(), emc_result.workers,
              emc_result.wall_seconds);

  EnsembleOptions emc_eopt;
  emc_eopt.metrics = {"v_far_abs_peak"};
  emc_eopt.quantiles = {0.5, 0.95};
  emc_eopt.exceedances = {{"v_far_abs_peak", 2.0, /*above=*/true}};
  const EnsembleStats emc_stats =
      computeEnsembleStats(emc_result, emc_expanded, emc_eopt);
  writeEnsembleCsv(emc_stats, "mc_emc_ensemble.csv");
  writeEnsembleJson(emc_stats, "mc_emc_ensemble.json");
  std::puts("# wrote mc_emc_ensemble.csv, mc_emc_ensemble.json");

  std::puts("corner,samples,noise_med_mV,noise_q95_mV,P[>2V]");
  for (const GroupEnsemble& g : emc_stats.groups) {
    const MetricEnsemble& peak = g.metrics[0];
    std::printf("\"%s\",%zu,%.2f,%.2f,%.2f\n", g.label.c_str(), g.samples,
                1e3 * peak.quantile_values[0], 1e3 * peak.quantile_values[1],
                g.exceedances[0].probability);
  }

  // The whole 64-task illumination ensemble must have performed exactly
  // ONE base factorization: the field corners differ only in RHS sources.
  std::printf("# emc solver cache: %lld base factorization(s), %lld reuses\n",
              emc_result.solver_cache.numeric_misses,
              emc_result.solver_cache.numeric_hits);
  const bool one_factorization = emc_result.solver_cache.numeric_misses == 1;
  if (!one_factorization)
    std::puts("# ERROR: illumination ensemble re-factored the base matrix");

  sweepcli::exportAndFinish(result, "mc", cli);
  return one_factorization ? 0 : 1;
}
