// Coupled-line crosstalk sweep: the workload the closed pre-registry API
// could not express, added purely as one more registered scenario family.
// The RBF driver macromodel drives the aggressor of two coupled RLGC
// lines; the sweep walks coupling strength x victim far-end termination
// and exports the victim's far-end crosstalk metrics (v_far_max/min is the
// far-end crosstalk peak, far_end_delay the coupling delay) through the
// standard SweepResult CSV/JSON path.
//
// Build & run:  ./example_crosstalk_sweep [--trace=trace.json] [--progress] [--health]
// Outputs:      crosstalk_results.csv, crosstalk_results.json,
//               crosstalk_telemetry.json (+ optional Chrome trace)

#include <cmath>
#include <cstdio>

#include "engine/sweep_runner.h"
#include "sweep_cli.h"

int main(int argc, char** argv) {
  using namespace fdtdmm;

  sweepcli::Cli cli = sweepcli::init(argc, argv);

  std::puts("# crosstalk sweep: coupling x victim termination (MNA engine)");

  SweepSpec spec;
  spec.scenario = "crosstalk";
  spec.set("pattern", std::string("010"));
  spec.set("bit_time", 2e-9);
  spec.set("t_stop", 8e-9);
  spec.set("segments", 24.0);
  spec.axis("coupling", {0.05, 0.15, 0.3});
  spec.axis("victim_r_far", {25.0, 50.0, 100.0});
  std::printf("# grid: %zu simulation tasks\n", spec.count());

  std::puts("# identifying the driver macromodel once (no receiver needed)...");
  SweepRunnerOptions opt;
  opt.workers = 0;  // all hardware threads
  cli.apply(opt);
  SweepRunner runner(opt);
  const SweepResult result = runner.run(spec);

  std::printf("# %zu/%zu runs ok on %zu workers in %.2f s\n", result.okCount(),
              result.runs.size(), result.workers, result.wall_seconds);
  std::puts("index,xtalk_peak_mV,coupling_delay_ns,label");
  for (const SweepRunRecord& run : result.runs) {
    if (!run.ok) {
      std::printf("%zu,FAILED: %s\n", run.index, run.error.c_str());
      continue;
    }
    const double peak = 1e3 * std::max(std::abs(run.metrics.v_far_max),
                                       std::abs(run.metrics.v_far_min));
    std::printf("%zu,%.2f,%.3f,\"%s\"\n", run.index, peak,
                run.metrics.far_end_delay * 1e9, run.label.c_str());
  }

  sweepcli::exportAndFinish(result, "crosstalk", cli);
  return 0;
}
