// Frequency-domain sweep: log-spaced frequency axis over the "ac" scenario
// family (complex MNA, S-parameters), batched by the same parallel sweep
// engine as every transient family. The matched lossless ladder has the
// closed form H = 0.5 e^{-j w Td}, so the printed |H| column should sit at
// 0.5 across the band — and because frequency only changes matrix VALUES,
// all corners of one line share a single complex symbolic analysis.
//
// Build & run:  ./example_ac_sweep [--trace=trace.json] [--progress] [--health]
// Outputs:      ac_results.csv, ac_results.json, ac_telemetry.json
//               (+ optional Chrome trace)

#include <cmath>
#include <cstdio>
#include <vector>

#include "engine/sweep_runner.h"
#include "sweep_cli.h"

int main(int argc, char** argv) {
  using namespace fdtdmm;

  sweepcli::Cli cli = sweepcli::init(argc, argv);

  std::puts("# ac sweep: log-spaced frequency axis, matched 50-ohm line");

  // 13 points per solver mode, 1 MHz .. 1 GHz (the 32-segment ladder is a
  // faithful line model well past 1 GHz for the default 10 cm geometry).
  std::vector<double> freqs;
  for (int k = 0; k <= 12; ++k) freqs.push_back(1e6 * std::pow(10.0, k / 4.0));

  SweepSpec spec;
  spec.scenario = "ac";
  spec.axis("frequency", freqs);
  spec.axisStrings("solver", {"sparse", "dense"});
  std::printf("# grid: %zu simulation tasks\n", spec.count());

  SweepRunnerOptions opt;
  opt.workers = 0;  // all hardware threads
  cli.apply(opt);
  SweepRunner runner(opt);
  const SweepResult result = runner.run(spec);

  std::printf("# %zu/%zu runs ok on %zu workers in %.2f s\n", result.okCount(),
              result.runs.size(), result.workers, result.wall_seconds);

  // v_far carries |H|; the victims waveforms carry Re/Im of H and the
  // four S-parameters (ac_family.h's waveform mapping).
  std::puts("index,|H|,label");
  for (const SweepRunRecord& run : result.runs) {
    if (!run.ok) {
      std::printf("%zu,FAILED: %s\n", run.index, run.error.c_str());
      continue;
    }
    std::printf("%zu,%.6f,\"%s\"\n", run.index, run.metrics.v_far_max,
                run.label.c_str());
  }

  // The sharing economy at AC: the sparse corners form one structure class
  // and perform ONE complex symbolic analysis between them; every other
  // frequency point reuses it. (Dense corners have no symbolic stage.)
  std::printf("# solver cache: %lld symbolic analyses shared across %lld reuses\n",
              result.solver_cache.symbolic_misses, result.solver_cache.symbolic_hits);

  sweepcli::exportAndFinish(result, "ac", cli);
  return 0;
}
