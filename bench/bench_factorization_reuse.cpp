// Benchmark of cross-corner solver-state sharing (SweepOptions::
// share_solver_state) on the workload it exists for: a linear RHS-only EMC
// immunity sweep where every corner assembles the same static MNA base.
// With sharing disabled each of the 12 amplitude x angle corners pays its
// own dense O(n^3) base factorization; with sharing enabled the whole grid
// is one numeric-base class and factors exactly once, so the sweep cost
// collapses to one factorization plus the per-corner O(n^2) substitutions.
//
// Exit status is nonzero (Release builds) if the sharing-enabled sweep is
// not at least `min_speedup` faster (default 2x; override with
// --min-speedup=<x> / FDTDMM_BENCH_MIN_REUSE_SPEEDUP for noisy runners),
// if the factorization counts violate the one-LU-per-class invariant, or
// if the exported metrics differ by a single byte between the two runs.
// Writes BENCH_reuse.json for the CI bench job's artifact trail.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_json.h"
#include "engine/sweep_runner.h"
#include "obs/trace.h"

namespace {

using namespace fdtdmm;
using Clock = std::chrono::steady_clock;

// A dense trace model (n ~ 1200 unknowns) so the base factorization
// dominates a corner's cost; coarse step and short window so per-step
// source stamping and substitutions stay cheap.
SweepSpec reuseSweepSpec() {
  SweepSpec spec;
  spec.scenario = "emc";
  spec.set("drive", std::string("none"));  // quiescent: linear, no models
  spec.set("solver", std::string("reuse_lu"));
  spec.set("segments", 600.0);
  spec.set("dt", 1e-10);
  spec.set("t_stop", 5e-10);
  spec.set("pulse_t0", 2e-10);
  spec.axis("amplitude", {500.0, 1000.0, 2000.0});
  spec.axis("theta", {20.0, 40.0, 60.0, 90.0});
  return spec;
}

struct SweepTiming {
  SweepResult result;
  double seconds = 0.0;
  long long total_lu = 0;
  std::string csv;
};

SweepTiming runSweep(bool share) {
  SweepRunnerOptions opt;
  opt.workers = 1;  // isolate the factorization economy from parallelism
  opt.share_solver_state = share;
  opt.reuse_results = false;  // time solver work, not result replay
  SweepRunner runner(opt);

  SweepTiming t;
  const auto start = Clock::now();
  t.result = runner.run(reuseSweepSpec());
  t.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  for (const SweepRunRecord& r : t.result.runs)
    t.total_lu += r.telemetry.lu_factorizations;

  const std::string path = share ? "bench_reuse_on.csv" : "bench_reuse_off.csv";
  writeSweepCsv(t.result, path);
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  t.csv = ss.str();
  std::remove(path.c_str());
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("=== bench_factorization_reuse: shared vs per-corner base LU ===");
  const obs::ScopedTrace trace = obs::initTraceFromArgs(argc, argv);
  const double min_speedup =
      benchutil::minSpeedup(argc, argv, "FDTDMM_BENCH_MIN_REUSE_SPEEDUP", 2.0);
  int failures = 0;

  const SweepTiming off = runSweep(false);
  const SweepTiming on = runSweep(true);
  const std::size_t corners = on.result.runs.size();
  const double speedup = off.seconds / on.seconds;

  std::printf("%10s %9s %12s %9s\n", "sharing", "total LU", "wall [s]", "ok");
  std::printf("%10s %9lld %12.4f %8zu/%zu\n", "off", off.total_lu, off.seconds,
              off.result.okCount(), corners);
  std::printf("%10s %9lld %12.4f %8zu/%zu\n", "on", on.total_lu, on.seconds,
              on.result.okCount(), corners);
  std::printf("  speedup: %.2fx (gate: >= %.2fx, release builds)\n", speedup,
              min_speedup);

  if (off.result.okCount() != corners || on.result.okCount() != corners) {
    std::puts("FAIL: not every corner completed");
    ++failures;
  }
  // The PR's invariant: one factorization per numeric-base class. This grid
  // is a single class (amplitude/theta are RHS-only), so sharing must
  // factor exactly once; disabled, every corner factors privately.
  if (on.total_lu != 1 || on.result.solver_cache.numeric_misses != 1) {
    std::printf("FAIL: sharing-on factored %lld times (expected 1)\n",
                on.total_lu);
    ++failures;
  }
  if (off.total_lu != static_cast<long long>(corners)) {
    std::printf("FAIL: sharing-off factored %lld times (expected %zu)\n",
                off.total_lu, corners);
    ++failures;
  }
  if (on.csv != off.csv || on.csv.empty()) {
    std::puts("FAIL: exported metrics differ between sharing on and off");
    ++failures;
  }
#ifdef NDEBUG
  if (speedup < min_speedup) {
    std::printf("FAIL: expected >= %.2fx from factorization sharing\n",
                min_speedup);
    ++failures;
  }
#else
  std::puts("(non-optimized build: speedup reported, not gated)");
#endif

  const bool pass = failures == 0;
  using benchutil::num;
  const std::string json = std::string("{\n") +
      "  \"bench\": \"factorization_reuse\",\n" +
      "  \"build\": \"" + benchutil::buildKind() + "\",\n" +
      "  \"min_speedup\": " + num(min_speedup) + ",\n" +
      "  \"corners\": " + std::to_string(corners) + ",\n" +
      "  \"numeric_base_classes\": " +
      std::to_string(on.result.solver_cache.numeric_misses) + ",\n" +
      "  \"shared_base_reuses\": " +
      std::to_string(on.result.solver_cache.numeric_hits) + ",\n" +
      "  \"lu_with_sharing\": " + std::to_string(on.total_lu) + ",\n" +
      "  \"lu_without_sharing\": " + std::to_string(off.total_lu) + ",\n" +
      "  \"seconds_with_sharing\": " + num(on.seconds) + ",\n" +
      "  \"seconds_without_sharing\": " + num(off.seconds) + ",\n" +
      "  \"speedup\": " + num(speedup) + ",\n" +
      "  \"metrics_byte_identical\": " + (on.csv == off.csv ? "true" : "false") +
      ",\n" +
      "  \"sweep_observability\": " +
      benchutil::sweepObservabilityJson(on.result) + ",\n" +
      "  \"pass\": " + (pass ? "true" : "false") + "\n}\n";
  if (!benchutil::writeFile("BENCH_reuse.json", json)) ++failures;
  std::puts("\nwrote BENCH_reuse.json");

  if (failures == 0) std::puts("all checks passed");
  return failures == 0 ? 0 : 1;
}
