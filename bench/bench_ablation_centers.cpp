// Ablation: macromodel accuracy vs the number of Gaussian RBF centers L
// and the regression order r — the main dials of the paper's Eq. (3)
// expansion. Validation error is measured out-of-sample on the
// transistor-level HIGH-state driver port.

#include <cstdio>

#include "core/model_factory.h"
#include "devices/training.h"
#include "math/stats.h"
#include "rbf/identification.h"
#include "signal/sources.h"

int main() {
  using namespace fdtdmm;
  std::puts("=== bench_ablation_centers: accuracy vs RBF centers and order ===");

  const CmosDriverParams device;
  const double ts = 50e-12;

  // Training and validation excitations (different seeds).
  MultilevelOptions mo;
  mo.v_min = -0.6;
  mo.v_max = 2.4;
  mo.seed = 2024;
  const Waveform v_train_f = multilevelRandom(60e-9, ts / 4.0, mo);
  mo.seed = 5150;
  const Waveform v_val_f = multilevelRandom(40e-9, ts / 4.0, mo);

  RecordingOptions ro;
  ro.dt = ts / 8.0;
  std::puts("# recording transistor-level training/validation data...");
  const PortRecord train = resampleRecord(
      recordDriverFixedState(device, true, v_train_f, ro), ts);
  const PortRecord val = resampleRecord(
      recordDriverFixedState(device, true, v_val_f, ro), ts);

  std::puts("\norder,centers,train_nrmse,val_nrmse");
  for (const int order : {1, 2, 3}) {
    for (const std::size_t centers : {5u, 10u, 20u, 40u, 80u}) {
      SubmodelFitOptions opt;
      opt.order = order;
      opt.centers = centers;
      const auto model = fitGaussianSubmodel(train.v, train.i, opt);
      const Waveform i_train = simulateSubmodel(*model, train.v, train.v[0]);
      const Waveform i_val = simulateSubmodel(*model, val.v, val.v[0]);
      std::printf("%d,%zu,%.4f,%.4f\n", order, centers,
                  nrmse(i_train.samples(), train.i.samples()),
                  nrmse(i_val.samples(), val.i.samples()));
    }
  }
  std::puts("\n# expected shape: error drops steeply to ~L=20-40 then saturates;");
  std::puts("# order 2 suffices (the device dynamics are ~2nd order), matching");
  std::puts("# the low-order models the paper's references use.");
  return 0;
}
