// Reproduces the paper's in-text Newton-Raphson claim (Section 4): "the
// number of Newton-Raphson iterations required to solve the RBF model
// equations never exceeded a maximum number of three, whereas the accuracy
// threshold was set to the very stringent value of 1e-9."
//
// We instrument the 1D and 3D hybrid engines over both validation
// scenarios and print per-run maximum and average iteration counts.

#include <cstdio>

#include "core/tline_scenario.h"
#include "fdtd1d/line1d.h"
#include "rbf/driver_model.h"
#include "rbf/receiver_model.h"

int main() {
  using namespace fdtdmm;
  std::puts("=== bench_newton: Newton-Raphson iteration counts (tol 1e-9) ===");

  const auto driver = defaultDriverModel();
  const auto receiver = defaultReceiverModel();

  std::puts("\nscenario,engine,max_iters,avg_iters_per_port_step");
  int worst = 0;

  {
    TlineScenario cfg;
    cfg.load = FarEndLoad::kLinearRc;
    const auto run = runFdtd1dTline(cfg, driver, receiver);
    worst = std::max(worst, run.max_newton_iterations);
    std::printf("fig4_rc,fdtd1d,%d,-\n", run.max_newton_iterations);
  }
  {
    TlineScenario cfg;
    cfg.load = FarEndLoad::kReceiver;
    const auto run = runFdtd1dTline(cfg, driver, receiver);
    worst = std::max(worst, run.max_newton_iterations);
    std::printf("fig5_receiver,fdtd1d,%d,-\n", run.max_newton_iterations);
  }
  {
    // Direct instrumentation of a 1D run for average counts.
    Line1dConfig lc;
    lc.zc = 131.0;
    lc.td = 0.4e-9;
    lc.cells = 160;
    const BitPattern pattern("010", 2e-9);
    auto near = std::make_shared<RbfDriverPort>(driver, pattern);
    auto far = std::make_shared<RbfReceiverPort>(receiver);
    Fdtd1dLine line(lc, near, far);
    const auto res = line.run(5e-9);
    const double avg = static_cast<double>(res.total_newton_iterations) /
                       (2.0 * static_cast<double>(res.steps));
    worst = std::max(worst, res.max_newton_iterations);
    std::printf("fig5_receiver,fdtd1d_instrumented,%d,%.3f\n",
                res.max_newton_iterations, avg);
  }
  {
    TlineScenario cfg;
    cfg.load = FarEndLoad::kReceiver;
    // Reduced 3D mesh keeps this bench snappy; bench_fig4/5 run full size.
    cfg.mesh_nx = 92;
    cfg.mesh_ny = 16;
    cfg.mesh_nz = 15;
    cfg.strip_len = 76;
    cfg.mesh_delta = 1.52e-3;
    cfg.td = 76.0 * 1.52e-3 / 299792458.0;
    const auto run = runFdtd3dTline(cfg, driver, receiver);
    worst = std::max(worst, run.max_newton_iterations);
    std::printf("fig5_receiver,fdtd3d,%d,-\n", run.max_newton_iterations);
  }

  std::printf("\nworst-case Newton iterations across scenarios: %d\n", worst);
  std::puts("paper claim: never exceeded 3 at threshold 1e-9.");
  return 0;
}
