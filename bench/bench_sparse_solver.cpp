// Scaling benchmark of the sparse MNA path (TransientSolverMode::kSparse:
// CSR assembly + RCM-ordered banded LU) against the dense cached-LU path
// (kReuseFactorization) on the workload the sparse solver exists for:
// segmented RLGC board traces whose unknown count grows with the segment
// count. The dense path pays O(n^3) for its one factorization and O(n^2)
// per Newton substitution; the sparse path is O(n) in both because the
// RCM-permuted ladder has constant bandwidth — so the measured speedup
// must GROW superlinearly with the segment count.
//
// Exit status is nonzero (Release builds) if any case at >= `gate_segments`
// falls below the minimum speedup (default 5x at >= 200 segments; override
// with --min-speedup=<x> / FDTDMM_BENCH_MIN_SPARSE_SPEEDUP so shared CI
// runners can pin a conservative floor), if waveforms disagree beyond
// tolerance, or if either linear run factors more than once. Writes the
// scaling curve to BENCH_sparse.json for the CI bench job's artifact trail.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "circuit/rlgc_line.h"
#include "circuit/transient.h"
#include "obs/trace.h"
#include "signal/bit_pattern.h"

namespace {

using namespace fdtdmm;
using Clock = std::chrono::steady_clock;

// Sparse permuted elimination is not bitwise vs dense; rounding accumulates
// with system size, so the bench (up to 1603 unknowns) is looser than the
// equivalence tests' small fixtures.
constexpr double kWaveformTol = 1e-7;

struct RunStats {
  TransientResult result;
  double seconds = 0.0;
  std::size_t unknowns = 0;
  obs::RunTelemetry telemetry;
};

RunStats runLadder(std::size_t segments, TransientSolverMode mode) {
  const BitPattern pattern("0101", 1e-9);
  Circuit c;
  const int src = c.addNode();
  const int in = c.addNode();
  const int out = c.addNode();
  c.addVoltageSource(src, Circuit::kGround,
                     [pattern](double t) { return 1.8 * pattern.levelAt(t); });
  c.addResistor(src, in, 60.0);
  RlgcParams p;  // lossy board trace; 4 unknowns per segment
  p.r = 4.0;
  p.g = 1e-4;
  p.segments = segments;
  buildRlgcLine(c, in, Circuit::kGround, out, Circuit::kGround, p);
  c.addResistor(out, Circuit::kGround, 500.0);
  c.addCapacitor(out, Circuit::kGround, 1e-12);

  RunStats s;
  TransientOptions opt;
  opt.dt = 5e-12;
  opt.t_stop = 4e-9;
  opt.solver_mode = mode;
  opt.telemetry = &s.telemetry;

  const auto start = Clock::now();
  s.result = runTransient(c, opt, {{"in", in, 0}, {"out", out, 0}});
  s.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  s.unknowns = c.assignUnknowns();
  return s;
}

double maxAbsDiff(const Waveform& a, const Waveform& b) {
  double m = 0.0;
  for (std::size_t k = 0; k < std::min(a.size(), b.size()); ++k)
    m = std::max(m, std::abs(a[k] - b[k]));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("=== bench_sparse_solver: sparse CSR+banded-LU vs dense cached LU ===");
  const obs::ScopedTrace trace = obs::initTraceFromArgs(argc, argv);
  const double min_speedup =
      benchutil::minSpeedup(argc, argv, "FDTDMM_BENCH_MIN_SPARSE_SPEEDUP", 5.0);
  const std::size_t gate_segments = 200;
  int failures = 0;

  const std::vector<std::size_t> sizes = {16, 48, 100, 200, 400};
  std::string cases;
  std::printf("%10s %9s %12s %12s %9s %9s\n", "segments", "unknowns",
              "dense [s]", "sparse [s]", "speedup", "max|dv|");
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    const std::size_t segments = sizes[k];
    const auto dense = runLadder(segments, TransientSolverMode::kReuseFactorization);
    const auto sparse = runLadder(segments, TransientSolverMode::kSparse);
    const double diff = std::max(maxAbsDiff(sparse.result.at("in"), dense.result.at("in")),
                                 maxAbsDiff(sparse.result.at("out"), dense.result.at("out")));
    const double speedup = dense.seconds / sparse.seconds;
    std::printf("%10zu %9zu %12.4f %12.4f %8.2fx %9.2g\n", segments, dense.unknowns,
                dense.seconds, sparse.seconds, speedup, diff);

    if (dense.result.lu_factorizations != 1 || sparse.result.lu_factorizations != 1) {
      std::puts("FAIL: linear ladder must factor exactly once in both modes");
      ++failures;
    }
    if (diff > kWaveformTol) {
      std::printf("FAIL: waveforms disagree beyond %g V\n", kWaveformTol);
      ++failures;
    }
#ifdef NDEBUG
    if (segments >= gate_segments && speedup < min_speedup) {
      std::printf("FAIL: expected >= %.2fx at %zu segments\n", min_speedup, segments);
      ++failures;
    }
#endif
    if (k > 0) cases += ",\n";
    using benchutil::num;
    cases += "    {\"segments\": " + std::to_string(segments) +
             ", \"unknowns\": " + std::to_string(dense.unknowns) +
             ", \"dense_seconds\": " + num(dense.seconds) +
             ", \"sparse_seconds\": " + num(sparse.seconds) +
             ", \"speedup\": " + num(speedup) +
             ", \"dense_lu\": " + std::to_string(dense.result.lu_factorizations) +
             ", \"sparse_lu\": " + std::to_string(sparse.result.lu_factorizations) +
             ", \"max_dv\": " + num(diff) +
             ", \"dense_telemetry\": " + benchutil::telemetryJson(dense.telemetry) +
             ", \"sparse_telemetry\": " + benchutil::telemetryJson(sparse.telemetry) +
             "}";
  }
#ifndef NDEBUG
  std::puts("(non-optimized build: speedups reported, not gated)");
#endif

  const bool pass = failures == 0;
  const std::string json = std::string("{\n") +
      "  \"bench\": \"sparse_solver\",\n" +
      "  \"build\": \"" + benchutil::buildKind() + "\",\n" +
      "  \"min_speedup\": " + benchutil::num(min_speedup) + ",\n" +
      "  \"gate_segments\": " + std::to_string(gate_segments) + ",\n" +
      "  \"cases\": [\n" + cases + "\n  ],\n" +
      "  \"pass\": " + (pass ? "true" : "false") + "\n}\n";
  if (!benchutil::writeFile("BENCH_sparse.json", json)) ++failures;
  std::puts("\nwrote BENCH_sparse.json");

  if (failures == 0) std::puts("all checks passed");
  return failures == 0 ? 0 : 1;
}
