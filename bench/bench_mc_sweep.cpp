// Benchmark of the Monte Carlo sweep subsystem's two headline claims:
//
//  (a) Sample efficiency: Latin-hypercube sampling reaches a target
//      quantile-estimate accuracy with at least 2x fewer samples than
//      i.i.d. sampling. Measured on the real expansion machinery
//      (expandDetailed() draws) against a closed-form response with a
//      known exact quantile, replicated over many seeds — fully
//      deterministic, gated in every build.
//
//  (b) Solver-state reuse: a random-illumination EMC ensemble (every
//      sample differs only in RHS field sources) runs at least 2x faster
//      with cross-corner solver-state sharing than without, because the
//      whole ensemble is ONE numeric-base class and factors once.
//      Wall-clock is gated in Release builds only (override the floor
//      with --min-speedup=<x> / FDTDMM_BENCH_MIN_MC_SPEEDUP); the
//      factorization-count and byte-identical-metrics invariants are
//      checked unconditionally.
//
// Writes BENCH_mc.json for the CI bench job's artifact trail.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "bench_json.h"
#include "engine/sweep_runner.h"
#include "math/stats.h"
#include "obs/trace.h"

namespace {

using namespace fdtdmm;
using Clock = std::chrono::steady_clock;

// --- Gate (a): LHS vs i.i.d. quantile accuracy ---------------------------

// The response surface: Y = zc + load_r / 10 over zc ~ U[50, 150),
// load_r ~ U[100, 900) is trapezoidal on [60, 240], symmetric about its
// exact median 150 — the target quantile the two sampling modes race to
// estimate. (Stratification helps every quantile, but the margin is
// widest away from the distribution tails, so the median makes the
// 2x-fewer-samples gate deterministic rather than borderline.)
constexpr double kTargetQuantile = 0.50;
constexpr double kExactQuantile = 150.0;

double estimateQuantile(std::size_t samples, std::uint64_t seed,
                        McSampling mode) {
  SweepSpec spec;
  spec.scenario = "tline";
  StochasticAxis mc;
  mc.name = "mc";
  mc.params = {uniformParam("zc", 50.0, 150.0),
               uniformParam("load_r", 100.0, 900.0)};
  mc.samples = samples;
  mc.seed = seed;
  mc.sampling = mode;
  spec.stochasticAxis(mc);

  std::vector<double> y;
  for (const TaskProvenance& prov : spec.expandDetailed().provenance) {
    double zc = 0.0, load_r = 0.0;
    for (const ParamBinding& b : prov.sampled) {
      if (b.param == "zc") zc = std::get<double>(b.value);
      if (b.param == "load_r") load_r = std::get<double>(b.value);
    }
    y.push_back(zc + load_r / 10.0);
  }
  return quantile(y, kTargetQuantile);
}

double rmsQuantileError(std::size_t samples, McSampling mode,
                        std::size_t seeds) {
  double sum_sq = 0.0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const double err = estimateQuantile(samples, seed, mode) - kExactQuantile;
    sum_sq += err * err;
  }
  return std::sqrt(sum_sq / static_cast<double>(seeds));
}

// --- Gate (b): illumination-ensemble solver-state reuse ------------------

// Same dense-trace shape as bench_factorization_reuse (n ~ 1200 unknowns,
// short coarse window) so the base factorization dominates a sample's
// cost — but the grid is a seeded stochastic illumination ensemble
// instead of deterministic corners.
SweepSpec illuminationEnsembleSpec() {
  SweepSpec spec;
  spec.scenario = "emc";
  spec.set("drive", std::string("none"));  // quiescent: linear, no models
  spec.set("solver", std::string("reuse_lu"));
  spec.set("segments", 600.0);
  spec.set("dt", 1e-10);
  spec.set("t_stop", 5e-10);
  spec.set("pulse_t0", 2e-10);
  StochasticAxis field;
  field.name = "field";
  field.params = {uniformParam("theta", 20.0, 160.0),
                  uniformParam("phi", 0.0, 360.0),
                  uniformParam("pol_theta", 0.05, 1.0),
                  truncatedNormalParam("amplitude", 1e3, 300.0, 200.0, 2e3)};
  field.samples = 12;
  field.seed = 2026;
  field.sampling = McSampling::kLatinHypercube;
  spec.stochasticAxis(field);
  return spec;
}

struct SweepTiming {
  SweepResult result;
  double seconds = 0.0;
  long long total_lu = 0;
  std::string csv;
};

SweepTiming runEnsemble(bool share) {
  SweepRunnerOptions opt;
  opt.workers = 1;  // isolate the factorization economy from parallelism
  opt.share_solver_state = share;
  opt.reuse_results = false;  // time solver work, not result replay
  SweepRunner runner(opt);

  SweepTiming t;
  const auto start = Clock::now();
  t.result = runner.run(illuminationEnsembleSpec());
  t.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  for (const SweepRunRecord& r : t.result.runs)
    t.total_lu += r.telemetry.lu_factorizations;

  const std::string path = share ? "bench_mc_on.csv" : "bench_mc_off.csv";
  writeSweepCsv(t.result, path);
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  t.csv = ss.str();
  std::remove(path.c_str());
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("=== bench_mc_sweep: LHS sample efficiency + ensemble LU reuse ===");
  const obs::ScopedTrace trace = obs::initTraceFromArgs(argc, argv);
  const double min_speedup =
      benchutil::minSpeedup(argc, argv, "FDTDMM_BENCH_MIN_MC_SPEEDUP", 2.0);
  int failures = 0;

  // --- (a) quantile accuracy: LHS at N/2 vs i.i.d. at N ------------------
  constexpr std::size_t kIidSamples = 128;
  constexpr std::size_t kSeeds = 50;
  const double iid_err =
      rmsQuantileError(kIidSamples, McSampling::kIid, kSeeds);
  const double lhs_err =
      rmsQuantileError(kIidSamples / 2, McSampling::kLatinHypercube, kSeeds);
  std::printf("q%.2f RMS error over %zu seeds: iid(N=%zu) %.4f, "
              "lhs(N=%zu) %.4f\n",
              kTargetQuantile, kSeeds, kIidSamples, iid_err, kIidSamples / 2,
              lhs_err);
  if (!(lhs_err < iid_err)) {
    std::puts("FAIL: LHS at half the samples should beat i.i.d. accuracy");
    ++failures;
  }

  // --- (b) solver-state reuse across the illumination ensemble -----------
  const SweepTiming off = runEnsemble(false);
  const SweepTiming on = runEnsemble(true);
  const std::size_t samples = on.result.runs.size();
  const double speedup = off.seconds / on.seconds;

  std::printf("%10s %9s %12s %9s\n", "sharing", "total LU", "wall [s]", "ok");
  std::printf("%10s %9lld %12.4f %8zu/%zu\n", "off", off.total_lu, off.seconds,
              off.result.okCount(), samples);
  std::printf("%10s %9lld %12.4f %8zu/%zu\n", "on", on.total_lu, on.seconds,
              on.result.okCount(), samples);
  std::printf("  speedup: %.2fx (gate: >= %.2fx, release builds)\n", speedup,
              min_speedup);

  if (off.result.okCount() != samples || on.result.okCount() != samples) {
    std::puts("FAIL: not every sample completed");
    ++failures;
  }
  // The ensemble is one numeric-base class (every sampled parameter is
  // RHS-only): sharing must factor exactly once, sharing-off per sample.
  if (on.total_lu != 1 || on.result.solver_cache.numeric_misses != 1) {
    std::printf("FAIL: sharing-on factored %lld times (expected 1)\n",
                on.total_lu);
    ++failures;
  }
  if (off.total_lu != static_cast<long long>(samples)) {
    std::printf("FAIL: sharing-off factored %lld times (expected %zu)\n",
                off.total_lu, samples);
    ++failures;
  }
  if (on.csv != off.csv || on.csv.empty()) {
    std::puts("FAIL: exported metrics differ between sharing on and off");
    ++failures;
  }
#ifdef NDEBUG
  if (speedup < min_speedup) {
    std::printf("FAIL: expected >= %.2fx from ensemble solver-state reuse\n",
                min_speedup);
    ++failures;
  }
#else
  std::puts("(non-optimized build: speedup reported, not gated)");
#endif

  const bool pass = failures == 0;
  using benchutil::num;
  const std::string json = std::string("{\n") +
      "  \"bench\": \"mc_sweep\",\n" +
      "  \"build\": \"" + benchutil::buildKind() + "\",\n" +
      "  \"target_quantile\": " + num(kTargetQuantile) + ",\n" +
      "  \"iid_samples\": " + std::to_string(kIidSamples) + ",\n" +
      "  \"lhs_samples\": " + std::to_string(kIidSamples / 2) + ",\n" +
      "  \"replicate_seeds\": " + std::to_string(kSeeds) + ",\n" +
      "  \"iid_rms_error\": " + num(iid_err) + ",\n" +
      "  \"lhs_rms_error\": " + num(lhs_err) + ",\n" +
      "  \"lhs_sample_efficiency_ok\": " +
      (lhs_err < iid_err ? "true" : "false") + ",\n" +
      "  \"min_speedup\": " + num(min_speedup) + ",\n" +
      "  \"ensemble_samples\": " + std::to_string(samples) + ",\n" +
      "  \"numeric_base_classes\": " +
      std::to_string(on.result.solver_cache.numeric_misses) + ",\n" +
      "  \"lu_with_sharing\": " + std::to_string(on.total_lu) + ",\n" +
      "  \"lu_without_sharing\": " + std::to_string(off.total_lu) + ",\n" +
      "  \"seconds_with_sharing\": " + num(on.seconds) + ",\n" +
      "  \"seconds_without_sharing\": " + num(off.seconds) + ",\n" +
      "  \"speedup\": " + num(speedup) + ",\n" +
      "  \"metrics_byte_identical\": " + (on.csv == off.csv ? "true" : "false") +
      ",\n" +
      "  \"sweep_observability\": " +
      benchutil::sweepObservabilityJson(on.result) + ",\n" +
      "  \"pass\": " + (pass ? "true" : "false") + "\n}\n";
  if (!benchutil::writeFile("BENCH_mc.json", json)) ++failures;
  std::puts("\nwrote BENCH_mc.json");

  if (failures == 0) std::puts("all checks passed");
  return failures == 0 ? 0 : 1;
}
