// Before/after benchmark of the transient MNA solver refactor: the
// static/dynamic stamp split with a cached LU factorization
// (TransientSolverMode::kReuseFactorization) against the legacy
// full-restamp-and-refactor path (kFullRestamp), on
//
//   1. a linear-dominated lossy t-line transient (RLGC ladder, the paper's
//      board-level interconnect case) — here the reuse path performs ONE
//      factorization for the whole run and every Newton iteration is just a
//      forward/back substitution, and
//   2. the Fig. 4 transistor-level driver circuit — nonlinear, so the
//      matrix is re-factored per iteration and the win is limited to the
//      avoided restamping.
//
// Exit status is nonzero if the linear case is slower than the minimum
// speedup (default 3x; override with --min-speedup=<x> or the
// FDTDMM_BENCH_MIN_SPEEDUP env var so shared CI runners can pin a
// conservative floor) or the two paths disagree, so the bench doubles as a
// smoke check. Writes machine-readable results to BENCH_transient.json for
// the CI bench job's artifact trail.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "circuit/rlgc_line.h"
#include "circuit/transient.h"
#include "devices/cmos_driver.h"
#include "obs/trace.h"
#include "signal/bit_pattern.h"

namespace {

using namespace fdtdmm;
using Clock = std::chrono::steady_clock;

struct RunStats {
  TransientResult result;
  double seconds = 0.0;
  obs::RunTelemetry telemetry;
};

template <typename BuildAndRun>
RunStats timeRun(BuildAndRun&& run, TransientSolverMode mode) {
  RunStats s;
  const auto start = Clock::now();
  s.result = run(mode, &s.telemetry);
  s.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return s;
}

double maxAbsDiff(const Waveform& a, const Waveform& b) {
  double m = 0.0;
  for (std::size_t k = 0; k < std::min(a.size(), b.size()); ++k)
    m = std::max(m, std::abs(a[k] - b[k]));
  return m;
}

TransientResult runLinearTline(TransientSolverMode mode, obs::RunTelemetry* tel) {
  const BitPattern pattern("01011010", 1e-9);
  Circuit c;
  const int src = c.addNode();
  const int in = c.addNode();
  const int out = c.addNode();
  c.addVoltageSource(src, Circuit::kGround,
                     [pattern](double t) { return 1.8 * pattern.levelAt(t); });
  c.addResistor(src, in, 60.0);
  RlgcParams p;  // lossy board trace, 48 LC sections -> ~150 unknowns
  p.r = 4.0;
  p.g = 1e-4;
  p.segments = 48;
  buildRlgcLine(c, in, Circuit::kGround, out, Circuit::kGround, p);
  c.addResistor(out, Circuit::kGround, 500.0);
  c.addCapacitor(out, Circuit::kGround, 1e-12);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 8e-9;
  opt.settle_time = 1e-9;
  opt.solver_mode = mode;
  opt.telemetry = tel;
  return runTransient(c, opt, {{"in", in, 0}, {"out", out, 0}});
}

TransientResult runFig4Driver(TransientSolverMode mode, obs::RunTelemetry* tel) {
  const BitPattern pattern("010", 2e-9);
  Circuit c;
  auto drv = buildCmosDriver(c, CmosDriverParams{}, [pattern](double t) {
    return static_cast<double>(pattern.levelAt(t));
  });
  const int far = c.addNode();
  c.addIdealLine(drv.pad, Circuit::kGround, far, Circuit::kGround, 131.0, 0.4e-9);
  c.addResistor(far, Circuit::kGround, 500.0);
  c.addCapacitor(far, Circuit::kGround, 1e-12);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 5e-9;
  opt.settle_time = 3e-9;
  opt.solver_mode = mode;
  opt.telemetry = tel;
  return runTransient(c, opt, {{"near", drv.pad, 0}, {"far", far, 0}});
}

std::string caseJson(const char* name, const RunStats& ref, const RunStats& fast,
                     double diff) {
  using benchutil::num;
  return std::string("    {\"name\": \"") + name +
         "\", \"ref_seconds\": " + num(ref.seconds) +
         ", \"fast_seconds\": " + num(fast.seconds) +
         ", \"speedup\": " + num(ref.seconds / fast.seconds) +
         ", \"ref_lu\": " + std::to_string(ref.result.lu_factorizations) +
         ", \"fast_lu\": " + std::to_string(fast.result.lu_factorizations) +
         ", \"max_dv\": " + num(diff) +
         ", \"ref_telemetry\": " + benchutil::telemetryJson(ref.telemetry) +
         ", \"fast_telemetry\": " + benchutil::telemetryJson(fast.telemetry) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("=== bench_transient_solver: cached-LU stamp split vs full restamp ===");
  const obs::ScopedTrace trace = obs::initTraceFromArgs(argc, argv);
  const double min_speedup =
      benchutil::minSpeedup(argc, argv, "FDTDMM_BENCH_MIN_SPEEDUP", 3.0);
  int failures = 0;
  std::string cases;

  {
    std::puts("\n# linear-dominated: 48-section RLGC t-line, 4500 steps");
    const auto ref = timeRun(runLinearTline, TransientSolverMode::kFullRestamp);
    const auto fast = timeRun(runLinearTline, TransientSolverMode::kReuseFactorization);
    const double diff = std::max(maxAbsDiff(fast.result.at("in"), ref.result.at("in")),
                                 maxAbsDiff(fast.result.at("out"), ref.result.at("out")));
    const double speedup = ref.seconds / fast.seconds;
    std::printf("full restamp : %8.3f s  (%lld LU factorizations)\n", ref.seconds,
                ref.result.lu_factorizations);
    std::printf("reuse LU     : %8.3f s  (%lld LU factorizations)\n", fast.seconds,
                fast.result.lu_factorizations);
    std::printf("speedup      : %8.2fx   max |dv| = %.3g V\n", speedup, diff);
    if (fast.result.lu_factorizations != 1) {
      std::puts("FAIL: linear run should factor exactly once");
      ++failures;
    }
#ifdef NDEBUG
    if (speedup < min_speedup) {
      std::printf("FAIL: expected >= %.2fx on the linear-dominated transient\n",
                  min_speedup);
      ++failures;
    }
#else
    // Debug/sanitizer builds skew wall-clock ratios; report only.
    std::puts("(non-optimized build: speedup reported, not gated)");
#endif
    if (diff != 0.0) {
      std::puts("FAIL: linear waveforms must match bitwise");
      ++failures;
    }
    cases += caseJson("linear_rlgc48", ref, fast, diff);
  }

  {
    std::puts("\n# nonlinear: Fig. 4 transistor-level CMOS driver + ideal line + RC");
    const auto ref = timeRun(runFig4Driver, TransientSolverMode::kFullRestamp);
    const auto fast = timeRun(runFig4Driver, TransientSolverMode::kReuseFactorization);
    const double diff = std::max(maxAbsDiff(fast.result.at("near"), ref.result.at("near")),
                                 maxAbsDiff(fast.result.at("far"), ref.result.at("far")));
    std::printf("full restamp : %8.3f s  (%lld LU factorizations)\n", ref.seconds,
                ref.result.lu_factorizations);
    std::printf("reuse LU     : %8.3f s  (%lld LU factorizations)\n", fast.seconds,
                fast.result.lu_factorizations);
    std::printf("speedup      : %8.2fx   max |dv| = %.3g V\n", ref.seconds / fast.seconds,
                diff);
    if (diff > 1e-12) {
      std::puts("FAIL: nonlinear waveforms must agree to <= 1e-12");
      ++failures;
    }
    cases += ",\n";
    cases += caseJson("fig4_nonlinear", ref, fast, diff);
  }

  const bool pass = failures == 0;
  const std::string json = std::string("{\n") +
      "  \"bench\": \"transient_solver\",\n" +
      "  \"build\": \"" + benchutil::buildKind() + "\",\n" +
      "  \"min_speedup\": " + benchutil::num(min_speedup) + ",\n" +
      "  \"cases\": [\n" + cases + "\n  ],\n" +
      "  \"pass\": " + (pass ? "true" : "false") + "\n}\n";
  if (!benchutil::writeFile("BENCH_transient.json", json)) ++failures;
  std::puts("\nwrote BENCH_transient.json");

  if (failures == 0) std::puts("all checks passed");
  return failures == 0 ? 0 : 1;
}
