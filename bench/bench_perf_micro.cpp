// Micro-benchmarks (google-benchmark) of the computational kernels behind
// the hybrid solver: Yee cell updates, Gaussian RBF evaluation, resampled
// state commit, the coupled port Newton solve, and the MNA step.

#include <benchmark/benchmark.h>

#include <memory>

#include "circuit/rlgc_line.h"
#include "circuit/transient.h"
#include "fdtd/solver.h"
#include "math/newton.h"
#include "obs/histogram.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rbf/resampling.h"
#include "rbf/submodel.h"
#include "signal/linear_ports.h"

namespace {

using namespace fdtdmm;

void BM_FdtdStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  GridSpec s;
  s.nx = s.ny = s.nz = n;
  s.dx = s.dy = s.dz = 1e-3;
  Grid3 g(s);
  g.pecPlateZ(n / 2, 1, n - 1, 1, n - 1);  // something to scatter off
  g.bake();
  FdtdSolver solver(std::move(g));
  solver.run(2);  // warm up / first-step init
  for (auto _ : state) {
    solver.run(1);
  }
  const double cells = static_cast<double>(n) * n * n;
  state.counters["Mcells/s"] = benchmark::Counter(
      cells * 1e-6, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_FdtdStep)->Arg(16)->Arg(32)->Arg(64);

GaussianRbfParams benchRbfParams(std::size_t centers) {
  GaussianRbfParams p;
  p.order = 2;
  p.ts = 50e-12;
  p.beta = 0.5;
  p.i_scale = 100.0;
  p.theta.assign(centers, 0.001);
  p.c0.assign(centers, 0.0);
  p.cv.assign(centers, Vector{0.0, 0.0});
  p.ci.assign(centers, Vector{0.0, 0.0});
  for (std::size_t l = 0; l < centers; ++l) {
    p.c0[l] = -0.5 + 2.8 * static_cast<double>(l) / static_cast<double>(centers);
    p.cv[l] = {p.c0[l], p.c0[l]};
    p.ci[l] = {0.01 * static_cast<double>(l % 7), 0.0};
  }
  return p;
}

void BM_RbfEval(benchmark::State& state) {
  GaussianRbfSubmodel m(benchRbfParams(static_cast<std::size_t>(state.range(0))));
  const Vector xv{0.9, 0.85}, xi{0.002, 0.0015};
  double v = 0.9;
  for (auto _ : state) {
    double didv = 0.0;
    benchmark::DoNotOptimize(m.eval(v, xv, xi, &didv));
    v = v < 1.7 ? v + 1e-4 : 0.1;
  }
  state.counters["evals/s"] =
      benchmark::Counter(1, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_RbfEval)->Arg(10)->Arg(40)->Arg(160);

void BM_ResampledCommit(benchmark::State& state) {
  GaussianRbfSubmodel m(benchRbfParams(40));
  ResampledSubmodelState st(&m, 1.4e-12);  // FDTD-like tau ~ 0.028
  st.reset(0.0);
  double v = 0.0;
  for (auto _ : state) {
    st.commit(v);
    v = v < 1.7 ? v + 1e-5 : 0.0;
  }
}
BENCHMARK(BM_ResampledCommit);

void BM_PortNewtonSolve(benchmark::State& state) {
  // The scalar Eq. (8) solve with an RBF-like device at realistic alphas.
  GaussianRbfSubmodel m(benchRbfParams(40));
  ResampledSubmodelState st(&m, 1.4e-12);
  st.reset(0.0);
  const double a0 = 1.0, a3 = 113.0;
  double v = 0.5;
  for (auto _ : state) {
    const double rhs = 0.7;
    auto f = [&](double vx, double& df) {
      double didv = 0.0;
      const double idev = st.eval(vx, didv);
      df = a0 + a3 * didv;
      return a0 * vx + a3 * idev - rhs;
    };
    NewtonOptions opt;
    opt.tolerance = 1e-9;
    newtonScalar(f, v, opt);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_PortNewtonSolve);

void BM_MnaTransientStep(benchmark::State& state) {
  // Cost of one SPICE step on a small nonlinear circuit, amortized.
  // Arg 0 selects the solver path: 0 = cached-LU stamp split, 1 = legacy
  // full restamp (the before/after pair of the static/dynamic refactor).
  const auto mode = state.range(0) == 0 ? TransientSolverMode::kReuseFactorization
                                        : TransientSolverMode::kFullRestamp;
  for (auto _ : state) {
    Circuit c;
    const int a = c.addNode();
    const int b = c.addNode();
    c.addVoltageSource(a, Circuit::kGround, [](double) { return 1.8; });
    c.addResistor(a, b, 50.0);
    c.addDiode(b, Circuit::kGround);
    c.addCapacitor(b, Circuit::kGround, 1e-12);
    TransientOptions opt;
    opt.dt = 1e-12;
    opt.t_stop = 100e-12;
    opt.solver_mode = mode;
    benchmark::DoNotOptimize(runTransient(c, opt, {{"v", b, 0}}));
  }
  state.counters["steps/s"] =
      benchmark::Counter(100, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_MnaTransientStep)->Arg(0)->Arg(1);

void BM_MnaLinearTlineStep(benchmark::State& state) {
  // The linear-dominated hot path of the sweep engine: a lossy RLGC ladder
  // where the stamp split turns every Newton iteration into a pure
  // forward/back substitution. Arg 0 as in BM_MnaTransientStep.
  const auto mode = state.range(0) == 0 ? TransientSolverMode::kReuseFactorization
                                        : TransientSolverMode::kFullRestamp;
  for (auto _ : state) {
    Circuit c;
    const int src = c.addNode();
    const int in = c.addNode();
    const int out = c.addNode();
    c.addVoltageSource(src, Circuit::kGround, [](double t) { return t >= 0.0 ? 1.8 : 0.0; });
    c.addResistor(src, in, 60.0);
    RlgcParams p;
    p.r = 4.0;
    p.segments = 24;
    buildRlgcLine(c, in, Circuit::kGround, out, Circuit::kGround, p);
    c.addResistor(out, Circuit::kGround, 500.0);
    TransientOptions opt;
    opt.dt = 2e-12;
    opt.t_stop = 200e-12;
    opt.solver_mode = mode;
    benchmark::DoNotOptimize(runTransient(c, opt, {{"v", out, 0}}));
  }
  state.counters["steps/s"] =
      benchmark::Counter(100, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_MnaLinearTlineStep)->Arg(0)->Arg(1);

void BM_MnaTelemetryOverhead(benchmark::State& state) {
  // The observability overhead claim, measured: the same linear ladder as
  // BM_MnaLinearTlineStep with telemetry collection off (Arg 0) vs on
  // (Arg 1). Off leaves every phase timer a dead branch; the two variants
  // must stay within a few percent of each other (tracing stays disabled
  // in both — no writer is installed).
  const bool collect = state.range(0) != 0;
  obs::RunTelemetry tel;
  for (auto _ : state) {
    Circuit c;
    const int src = c.addNode();
    const int in = c.addNode();
    const int out = c.addNode();
    c.addVoltageSource(src, Circuit::kGround, [](double t) { return t >= 0.0 ? 1.8 : 0.0; });
    c.addResistor(src, in, 60.0);
    RlgcParams p;
    p.r = 4.0;
    p.segments = 24;
    buildRlgcLine(c, in, Circuit::kGround, out, Circuit::kGround, p);
    c.addResistor(out, Circuit::kGround, 500.0);
    TransientOptions opt;
    opt.dt = 2e-12;
    opt.t_stop = 200e-12;
    opt.solver_mode = TransientSolverMode::kReuseFactorization;
    opt.telemetry = collect ? &tel : nullptr;
    benchmark::DoNotOptimize(runTransient(c, opt, {{"v", out, 0}}));
  }
  state.counters["steps/s"] =
      benchmark::Counter(100, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_MnaTelemetryOverhead)->Arg(0)->Arg(1);

void BM_MnaHealthOverhead(benchmark::State& state) {
  // The numerical-health overhead claim, measured: the same ladder with
  // telemetry on in both variants, health collection off (Arg 0) vs on
  // (Arg 1). Off must be indistinguishable from plain telemetry (every
  // health site is one branch); on adds the per-factorization pivot
  // copies, the Newton trajectories, and the end-of-run residual +
  // condition estimate.
  const bool collect = state.range(0) != 0;
  obs::RunTelemetry tel;
  for (auto _ : state) {
    Circuit c;
    const int src = c.addNode();
    const int in = c.addNode();
    const int out = c.addNode();
    c.addVoltageSource(src, Circuit::kGround, [](double t) { return t >= 0.0 ? 1.8 : 0.0; });
    c.addResistor(src, in, 60.0);
    RlgcParams p;
    p.r = 4.0;
    p.segments = 24;
    buildRlgcLine(c, in, Circuit::kGround, out, Circuit::kGround, p);
    c.addResistor(out, Circuit::kGround, 500.0);
    TransientOptions opt;
    opt.dt = 2e-12;
    opt.t_stop = 200e-12;
    opt.solver_mode = TransientSolverMode::kReuseFactorization;
    opt.telemetry = &tel;
    opt.health.collect = collect;
    benchmark::DoNotOptimize(runTransient(c, opt, {{"v", out, 0}}));
  }
  state.counters["steps/s"] =
      benchmark::Counter(100, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_MnaHealthOverhead)->Arg(0)->Arg(1);

void BM_HistogramRecord(benchmark::State& state) {
  // One log-bucket increment: ln, scale, bucket add. This is the per-sample
  // cost of the sweep latency histograms.
  obs::Histogram h;
  double v = 1e-6;
  for (auto _ : state) {
    h.record(v);
    v = v < 1.0 ? v * 1.0001 : 1e-6;
    benchmark::DoNotOptimize(&h);
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramRegistryRecord(benchmark::State& state) {
  // The registry path the sweep workers use: thread-shard lookup + named
  // histogram lookup + record.
  obs::HistogramRegistry reg;
  double v = 1e-6;
  for (auto _ : state) {
    reg.record("corner_wall_seconds", v);
    v = v < 1.0 ? v * 1.0001 : 1e-6;
  }
}
BENCHMARK(BM_HistogramRegistryRecord);

void BM_DisabledTraceSpan(benchmark::State& state) {
  // Cost of a TraceSpan in the no-writer case: one atomic load and a
  // branch at each end. This is what every instrumented hot path pays
  // when tracing is off.
  for (auto _ : state) {
    obs::TraceSpan span("bench", "obs");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_DisabledTraceSpan);

}  // namespace

BENCHMARK_MAIN();
