#pragma once
// Shared helpers for the solver benches' machine-readable output: the CI
// bench job parses/archives the BENCH_*.json files these produce and gates
// on the benches' exit status, so thresholds must be overridable per runner
// (shared CI machines are noisy) without editing code. Precedence:
// --min-speedup=<x> flag, then the given env var, then the built-in floor.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace benchutil {

/// Threshold from `--min-speedup=<x>` argv, env var, or fallback.
inline double minSpeedup(int argc, char** argv, const char* env_name,
                         double fallback) {
  double value = fallback;
  if (const char* env = std::getenv(env_name)) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0) value = v;
  }
  const char* prefix = "--min-speedup=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      char* end = nullptr;
      const double v = std::strtod(argv[i] + std::strlen(prefix), &end);
      if (end != argv[i] + std::strlen(prefix) && v > 0.0) value = v;
    }
  }
  return value;
}

/// Compact JSON number formatting: 9 significant digits, plenty for the
/// wall-clock measurements these files carry (not full round-tripping).
inline std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Writes `content` to `path`; returns false (with a message) on failure.
inline bool writeFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

inline const char* buildKind() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

}  // namespace benchutil
