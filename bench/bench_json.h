#pragma once
// Shared helpers for the solver benches' machine-readable output: the CI
// bench job parses/archives the BENCH_*.json files these produce and gates
// on the benches' exit status, so thresholds must be overridable per runner
// (shared CI machines are noisy) without editing code. Precedence:
// --min-speedup=<x> flag, then the given env var, then the built-in floor.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "engine/sweep_telemetry.h"
#include "obs/histogram.h"
#include "obs/telemetry.h"

namespace benchutil {

/// Threshold from `--min-speedup=<x>` argv, env var, or fallback.
inline double minSpeedup(int argc, char** argv, const char* env_name,
                         double fallback) {
  double value = fallback;
  if (const char* env = std::getenv(env_name)) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0) value = v;
  }
  const char* prefix = "--min-speedup=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      char* end = nullptr;
      const double v = std::strtod(argv[i] + std::strlen(prefix), &end);
      if (end != argv[i] + std::strlen(prefix) && v > 0.0) value = v;
    }
  }
  return value;
}

/// Compact JSON number formatting: 9 significant digits, plenty for the
/// wall-clock measurements these files carry (not full round-tripping).
inline std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Writes `content` to `path`; returns false (with a message) on failure.
inline bool writeFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

/// Serializes a solver telemetry summary (obs/telemetry.h) as one JSON
/// object, so the BENCH_*.json artifacts carry the phase breakdown and
/// factorization counts alongside the headline wall-clock numbers.
inline std::string telemetryJson(const fdtdmm::obs::RunTelemetry& t) {
  const fdtdmm::obs::TransientPhases& p = t.phases;
  return std::string("{\"stamp_static_seconds\": ") + num(p.stamp_static_seconds) +
         ", \"factor_seconds\": " + num(p.factor_seconds) +
         ", \"rhs_stamp_seconds\": " + num(p.rhs_stamp_seconds) +
         ", \"solve_seconds\": " + num(p.solve_seconds) +
         ", \"newton_seconds\": " + num(p.newton_seconds) +
         ", \"lu_factorizations\": " + std::to_string(t.lu_factorizations) +
         ", \"newton_iterations\": " + std::to_string(t.newton_iterations) +
         ", \"steps\": " + std::to_string(t.steps) +
         ", \"pattern_realignments\": " + std::to_string(t.pattern_realignments) +
         "}";
}

/// Percentile summary of a sweep's latency histograms (SweepResult::
/// histograms): count + p50/p95/p99 per distribution, compact enough for
/// the BENCH_*.json artifacts CI archives per run.
inline std::string histogramsJson(
    const std::map<std::string, fdtdmm::obs::Histogram>& hists) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, h] : hists) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": {\"count\": " + std::to_string(h.count()) +
           ", \"p50\": " + num(h.percentile(0.50)) +
           ", \"p95\": " + num(h.percentile(0.95)) +
           ", \"p99\": " + num(h.percentile(0.99)) + "}";
  }
  return out + "}";
}

/// One sweep's observability block for BENCH_*.json: the canonical counter
/// document (the same obs::countersJson slots as the telemetry export and
/// the examples' footers) plus the histogram percentile summary.
inline std::string sweepObservabilityJson(const fdtdmm::SweepResult& r) {
  return std::string("{\"counters\": ") +
         fdtdmm::obs::countersJson(fdtdmm::sweepCounters(r)) +
         ", \"histograms\": " + histogramsJson(r.histograms) + "}";
}

inline const char* buildKind() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

}  // namespace benchutil
