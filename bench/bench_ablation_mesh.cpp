// Ablation: 3D FDTD mesh resolution vs accuracy on the paper's validation
// line. The paper attributes the only visible engine disagreement (Fig. 4)
// to "numerical dispersion" of the 3D mesh; this bench quantifies that by
// sweeping the cell size (at fixed physical geometry) and measuring the
// deviation of the 3D far-end waveform from the dispersionless 1D FDTD
// reference, plus the measured line delay.

#include <cmath>
#include <cstdio>

#include "core/tline_scenario.h"
#include "math/stats.h"

namespace {

double nrmseOnWindow(const fdtdmm::Waveform& a, const fdtdmm::Waveform& b,
                     double t1) {
  fdtdmm::Vector va, vb;
  for (double t = 0.0; t <= t1; t += 10e-12) {
    va.push_back(a.value(t));
    vb.push_back(b.value(t));
  }
  return fdtdmm::nrmse(va, vb);
}

/// Time of the first 0.9 V upward crossing after 2 ns (the rising edge's
/// arrival at the far end).
double arrivalTime(const fdtdmm::Waveform& w) {
  for (double t = 2.0e-9; t < w.tEnd(); t += w.dt()) {
    if (w.value(t) >= 0.9) return t;
  }
  return -1.0;
}

}  // namespace

int main() {
  using namespace fdtdmm;
  std::puts("=== bench_ablation_mesh: 3D dispersion vs cells-per-feature ===");
  const auto driver = defaultDriverModel();
  const auto receiver = defaultReceiverModel();

  // Fixed physical line (length such that TD ~ 0.385 ns), meshed at three
  // resolutions; strip width/gap scale with the mesh so the geometry is
  // self-similar and Zc stays put.
  struct Level {
    const char* name;
    std::size_t strip_len;
    double delta;
    std::size_t width, gap;
    std::size_t nx, ny, nz;
  };
  const Level levels[] = {
      {"coarse", 40, 2.89e-3, 1, 1, 52, 10, 9},
      {"medium", 80, 1.446e-3, 2, 2, 98, 14, 12},
      {"paper", 160, 0.723e-3, 4, 3, 180, 24, 23},
  };

  std::puts("\nlevel,delta_mm,nrmse_far_vs_1d,nrmse_near_vs_1d,arrival_skew_ps");
  for (const Level& lv : levels) {
    TlineScenario cfg;
    cfg.load = FarEndLoad::kLinearRc;
    cfg.mesh_nx = lv.nx;
    cfg.mesh_ny = lv.ny;
    cfg.mesh_nz = lv.nz;
    cfg.mesh_delta = lv.delta;
    cfg.strip_len = lv.strip_len;
    cfg.strip_width = lv.width;
    cfg.strip_gap = lv.gap;
    cfg.td = static_cast<double>(lv.strip_len) * lv.delta / 299792458.0;

    const EngineRun ref = runFdtd1dTline(cfg, driver, receiver);
    const EngineRun f3d = runFdtd3dTline(cfg, driver, receiver);
    std::printf("%s,%.3f,%.4f,%.4f,%.1f\n", lv.name, lv.delta * 1e3,
                nrmseOnWindow(f3d.v_far, ref.v_far, cfg.t_stop),
                nrmseOnWindow(f3d.v_near, ref.v_near, cfg.t_stop),
                (arrivalTime(f3d.v_far) - arrivalTime(ref.v_far)) * 1e12);
  }
  std::puts("\n# expected shape: deviation shrinks with the cell size; the");
  std::puts("# paper-resolution mesh shows only the 'marginal deviation'");
  std::puts("# quoted in Section 4. (Cross-resolution Zc shifts also enter");
  std::puts("# at the coarsest level, where the strip is one cell wide.)");
  return 0;
}
