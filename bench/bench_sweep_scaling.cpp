// Measures how the sweep engine scales with worker count: a 16-point
// t-line parameter sweep (4 Zc corners x 4 far-end RC corners, 1D FDTD
// engine) run with 1/2/4/8 workers. Two things are reported:
//   - wall-clock per worker count and speedup vs the 1-worker run (the
//     tasks are independent CPU-bound simulations, so on an N-core machine
//     the sweep should approach Nx until workers exceed cores);
//   - a determinism check: the per-run metrics of every configuration must
//     be bitwise identical to the 1-worker reference, whatever the
//     scheduling was.
// The identified-model cache is built once and shared across all runs, so
// the timings measure simulation, not identification.

#include <cmath>
#include <cstdio>
#include <vector>

#include "engine/sweep_runner.h"

int main() {
  using namespace fdtdmm;

  std::puts("=== bench_sweep_scaling: 16-point t-line sweep vs worker count ===");

  SweepSpec spec;
  spec.scenario = "tline";
  spec.set("engine", std::string("fdtd1d"));
  spec.set("pattern", std::string("01011001"));
  spec.set("bit_time", 2e-9);
  spec.set("t_stop", 20e-9);
  spec.set("load", std::string("rc"));
  spec.axis("zc", {90.0, 110.0, 131.0, 150.0});
  ParamAxis rc_axis;
  rc_axis.name = "rc_load";
  rc_axis.only_when_param = "load";
  rc_axis.only_when_value = std::string("rc");
  rc_axis.points = {{{{"load_r", 500.0}, {"load_c", 1e-12}}},
                    {{{"load_r", 500.0}, {"load_c", 5e-12}}},
                    {{{"load_r", 100.0}, {"load_c", 1e-12}}},
                    {{{"load_r", 100.0}, {"load_c", 5e-12}}}};
  spec.axis(rc_axis);
  std::printf("sweep points: %zu\n", spec.count());

  std::puts("identifying the shared driver macromodel (once)...");
  auto cache = std::make_shared<ModelCache>();
  cache->driver("default");  // warm the cache outside the timed region

  std::vector<SweepResult> results;
  std::puts("\nworkers,wall_s,speedup_vs_1");
  double t1 = 0.0;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    SweepRunnerOptions opt;
    opt.workers = workers;
    opt.model_cache = cache;
    SweepRunner runner(opt);
    SweepResult res = runner.run(spec);
    if (workers == 1) t1 = res.wall_seconds;
    std::printf("%zu,%.3f,%.2fx\n", workers, res.wall_seconds,
                t1 / res.wall_seconds);
    results.push_back(std::move(res));
  }

  // Determinism: every worker count must reproduce the 1-worker metrics
  // bit for bit.
  bool deterministic = true;
  const SweepResult& ref = results.front();
  for (const SweepResult& res : results) {
    for (std::size_t i = 0; i < ref.runs.size(); ++i) {
      const RunMetrics& a = ref.runs[i].metrics;
      const RunMetrics& b = res.runs[i].metrics;
      if (!res.runs[i].ok || res.runs[i].index != ref.runs[i].index ||
          a.eye.eye_height != b.eye.eye_height || a.v_far_max != b.v_far_max ||
          a.v_far_min != b.v_far_min || a.overshoot != b.overshoot ||
          a.settling_time != b.settling_time ||
          a.far_end_delay != b.far_end_delay ||
          a.max_newton_iterations != b.max_newton_iterations) {
        deterministic = false;
        std::printf("MISMATCH at workers=%zu task=%zu\n", res.workers, i);
      }
    }
  }
  std::printf("\ndeterminism across worker counts: %s\n",
              deterministic ? "OK (bitwise identical metrics)" : "FAILED");
  return deterministic ? 0 : 1;
}
