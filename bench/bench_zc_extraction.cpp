// Reproduces the paper's in-text characterization of the Fig. 3 validation
// structure: "The effective characteristic impedance of the resulting
// transmission line is Zc ~ 131 ohm, while the line delay is TD ~ 0.4 ns."
//
// Method: drive the paper's 180 x 24 x 23 two-strip line with a Gaussian
// pulse through a Thevenin port, record port voltage and current, window
// the records to before the first reflection returns (t < 2 TD), and form
// Zc(f) = V(f) / I(f). The delay is read from the far-end arrival time.

#include <cmath>
#include <complex>
#include <cstdio>
#include <memory>

#include "fdtd/solver.h"
#include "signal/linear_ports.h"
#include "signal/spectrum.h"

int main() {
  using namespace fdtdmm;
  std::puts("=== bench_zc: effective Zc and TD of the Fig. 3 structure ===");

  GridSpec spec;
  spec.nx = 180;
  spec.ny = 24;
  spec.nz = 23;
  spec.dx = spec.dy = spec.dz = 0.723e-3;
  Grid3 grid(spec);
  const std::size_t x0 = 10, x1 = 170;
  const std::size_t j0 = 10, j1 = 14, jc = 12;
  const std::size_t k0 = 10, k1 = 13;
  grid.pecPlateZ(k0, x0, x1, j0, j1);
  grid.pecPlateZ(k1, x0, x1, j0, j1);
  grid.pecWireZ(x0, jc, k0, k1 - 1);
  grid.pecWireZ(x1, jc, k0, k1 - 1);
  grid.bake();

  FdtdSolver solver(std::move(grid));
  const double sigma = 40e-12;
  auto vs = [sigma](double t) {
    const double u = (t - 6.0 * sigma) / sigma;
    return std::exp(-0.5 * u * u);
  };
  LumpedPortSpec near_spec;
  near_spec.i = x0;
  near_spec.j = jc;
  near_spec.k = k1 - 1;
  near_spec.sign = -1;
  LumpedPort* near_port =
      solver.addLumpedPort(near_spec, std::make_shared<TheveninPort>(vs, 100.0));
  LumpedPortSpec far_spec = near_spec;
  far_spec.i = x1;
  LumpedPort* far_port =
      solver.addLumpedPort(far_spec, std::make_shared<ResistorPort>(1e6));

  const double len = static_cast<double>(x1 - x0) * spec.dx;
  const double td_expect = len / 299792458.0;
  solver.runUntil(2.2 * td_expect);

  // Window the port records to t < 1.8 TD (no reflection yet).
  auto windowed = [&](const Waveform& w) {
    Vector s;
    const auto n = static_cast<std::size_t>(1.8 * td_expect / w.dt());
    for (std::size_t k = 0; k < n && k < w.size(); ++k) s.push_back(w[k]);
    return Waveform(w.t0(), w.dt(), std::move(s));
  };
  const Waveform v = windowed(near_port->voltage());
  const Waveform i = windowed(near_port->current());

  // The recorded current flows into the *device* (the Thevenin source);
  // the current launched into the line is its negative.
  std::puts("\nf_GHz,|Zc|_ohm,arg(Zc)_deg");
  double zc_acc = 0.0;
  int zc_n = 0;
  for (const double f : frequencyGrid(0.5e9, 3.0e9, 6)) {
    const std::complex<double> z = -dftAt(v, f) / dftAt(i, f);
    std::printf("%.2f,%.1f,%.1f\n", f * 1e-9, std::abs(z),
                std::arg(z) * 180.0 / 3.14159265358979323846);
    zc_acc += std::abs(z);
    ++zc_n;
  }
  const double zc = zc_acc / zc_n;

  // Line delay from the far-end half-peak arrival.
  const Waveform& vf = far_port->voltage();
  double v_peak = 0.0;
  for (double s : vf.samples()) v_peak = std::max(v_peak, std::abs(s));
  double t_arrive = 0.0;
  for (std::size_t k = 0; k < vf.size(); ++k) {
    if (std::abs(vf[k]) > 0.5 * v_peak) {
      t_arrive = vf.dt() * static_cast<double>(k);
      break;
    }
  }
  const double td = t_arrive - 6.0 * sigma;  // remove the source pulse delay

  std::printf("\nmeasured Zc ~ %.0f ohm   (paper: ~131 ohm)\n", zc);
  std::printf("measured TD ~ %.3f ns  (paper: ~0.4 ns; c-limit %.3f ns)\n",
              td * 1e9, td_expect * 1e9);
  const bool ok = zc > 110.0 && zc < 155.0 && td > 0.3e-9 && td < 0.5e-9;
  std::puts(ok ? "within the paper's quoted band." : "OUT OF BAND — check mesh.");
  return ok ? 0 : 1;
}
