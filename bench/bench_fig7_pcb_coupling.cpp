// Reproduces Fig. 7 of the paper: active-line termination voltages of the
// 5 x 5 cm PCB (three coupled L-shaped nets, vias, double metallization,
// eps_r = 4.3) with and without a 2 kV/m theta-polarized Gaussian plane
// wave (9.2 GHz bandwidth) from {theta = 90 deg, phi = 180 deg}.
//
// Shape criteria: without the field, a clean '010' propagates from driver
// (NE) to receiver (FE); with the field, a disturbance of magnitude
// comparable to the signal swing is superimposed on both terminations.
//
// The full-size board (125 x 125 cells at 400 um) takes a few minutes.
// Pass --quick for a reduced board (used in smoke runs).

#include <cstdio>
#include <cstring>

#include "core/pcb_scenario.h"
#include "math/stats.h"

int main(int argc, char** argv) {
  using namespace fdtdmm;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  std::puts("=== bench_fig7: PCB incident-field coupling (NE/FE voltages) ===");

  PcbScenario cfg;  // defaults: paper geometry
  if (quick) {
    cfg.board_cells = 60;
    cfg.strip_len = 44;
    cfg.margin = 8;
    cfg.cell = 0.8e-3;
    std::puts("# quick mode: reduced board");
  }

  const auto driver = defaultDriverModel();
  const auto receiver = defaultReceiverModel();

  std::puts("# run 1/2: no external field");
  PcbScenario clean_cfg = cfg;
  clean_cfg.with_incident = false;
  const PcbRun clean = runPcbScenario(clean_cfg, driver, receiver);
  std::printf("#   wall %.1f s, max Newton %d\n", clean.wall_seconds,
              clean.max_newton_iterations);

  std::puts("# run 2/2: with 2 kV/m incident Gaussian pulse");
  PcbScenario field_cfg = cfg;
  field_cfg.with_incident = true;
  const PcbRun field = runPcbScenario(field_cfg, driver, receiver);
  std::printf("#   wall %.1f s, max Newton %d\n", field.wall_seconds,
              field.max_newton_iterations);

  std::puts("\nt_ns,NE_with_field,FE_with_field,NE_no_field,FE_no_field");
  for (double t = 0.0; t <= cfg.t_stop; t += 50e-12) {
    std::printf("%.2f,%.4f,%.4f,%.4f,%.4f\n", t * 1e9, field.v_near.value(t),
                field.v_far.value(t), clean.v_near.value(t), clean.v_far.value(t));
  }

  // Disturbance metrics.
  const double d_ne = maxAbsError(field.v_near.samples(), clean.v_near.samples());
  const double d_fe = maxAbsError(field.v_far.samples(), clean.v_far.samples());
  double swing = 0.0;
  for (double v : clean.v_far.samples()) swing = std::max(swing, v);
  std::printf("\n# peak field-induced disturbance: NE %.3f V, FE %.3f V "
              "(signal swing %.3f V)\n", d_ne, d_fe, swing);
  std::puts("# paper shape: disturbance comparable to the signal swing.");
  return 0;
}
