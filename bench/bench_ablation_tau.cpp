// Ablation: behaviour of resampled models vs the resampling factor
// tau = dt/Ts, demonstrating why the library enforces Eq. (17) (tau <= 1).
//
// Two probes:
//  1. analytic spectral radii of resampled linear state matrices across a
//     tau sweep spanning the admissible and forbidden ranges;
//  2. time-domain simulation of a resampled ARX model at tau values
//     approaching and exceeding 1 via a manually-built state update (the
//     library itself refuses tau > 1, which we also verify).

#include <cmath>
#include <cstdio>

#include "math/rng.h"
#include "math/spectral.h"
#include "rbf/resampling.h"

int main() {
  using namespace fdtdmm;
  std::puts("=== bench_ablation_tau: stability vs resampling factor ===");

  // --- Probe 1: spectral radius of resampled matrices.
  Rng rng(17);
  std::puts("\ntau,max_rho_over_20_random_stable_systems,stable");
  for (double tau = 0.1; tau <= 1.5001; tau += 0.1) {
    double max_rho = 0.0;
    for (int trial = 0; trial < 20; ++trial) {
      const std::size_t n = 2 + trial % 5;
      Matrix a(n, n);
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
      const double rho0 = spectralRadius(a);
      if (rho0 <= 0.0) continue;
      a *= 0.95 / rho0;
      // Manual resampling map (valid for any tau): A~ = I + tau (A - I).
      Matrix at = a;
      at *= tau;
      for (std::size_t d = 0; d < n; ++d) at(d, d) += 1.0 - tau;
      max_rho = std::max(max_rho, spectralRadius(at));
    }
    std::printf("%.1f,%.4f,%s\n", tau, max_rho, max_rho < 1.0 ? "yes" : "NO");
  }
  std::puts("# expected: stable for tau <= 1 (Fig. 2's circle), unstable beyond.");

  // --- Probe 2: time-domain blow-up check on a marginally stable pole.
  std::puts("\n# time-domain: pole at -0.95, constant input, 2000 steps");
  std::puts("tau,final_|state|");
  for (const double tau : {0.5, 0.9, 1.0, 1.05, 1.2}) {
    // x_{n+1} = (1 + tau(lambda - 1)) x_n + tau u.
    const double lam_t = 1.0 + tau * (-0.95 - 1.0);
    double x = 0.0;
    for (int k = 0; k < 2000; ++k) x = lam_t * x + tau * 1.0;
    std::printf("%.2f,%.6g\n", tau, std::abs(x));
  }
  std::puts("# expected: bounded (~0.5) for tau <= 1, divergent for tau > 1.");

  // --- Probe 3: the library refuses tau > 1 up front.
  LinearArxParams p;
  p.order = 2;
  p.ts = 50e-12;
  p.a = {0.5, 0.0};
  p.b = {0.01, 0.0, 0.0};
  LinearArxSubmodel m(p);
  bool rejected = false;
  try {
    ResampledSubmodelState bad(&m, 60e-12);  // tau = 1.2
  } catch (const std::invalid_argument&) {
    rejected = true;
  }
  std::printf("\nlibrary rejects tau = 1.2 at prepare(): %s\n",
              rejected ? "yes (Eq. 17 enforced)" : "NO — BUG");
  return rejected ? 0 : 1;
}
