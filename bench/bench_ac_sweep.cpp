// Benchmark of the AC engine's symbolic-reuse economy on the workload it
// exists for: a frequency sweep of one large terminated RLGC ladder. All
// frequency points share the complex MNA pattern — only the values depend
// on omega — so one AcSession pays pattern assembly + RCM analysis once
// and every further solveAt() is restamp + banded factor + substitution.
// The cold baseline tears the session down per point, re-paying CSR
// construction and the symbolic analysis at every frequency.
//
// Exit status is nonzero (Release builds) if the session-reuse sweep is
// not at least `min_speedup` faster (default 2x; override with
// --min-speedup=<x> / FDTDMM_BENCH_MIN_AC_SPEEDUP for noisy runners).
// Always enforced, any build: both paths must produce identical transfer
// functions (max relative |H| difference < 1e-12) and the shared session
// must factor exactly once per frequency. Writes BENCH_ac.json.

#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "circuit/rlgc_line.h"
#include "freq/ac_engine.h"

namespace {

using namespace fdtdmm;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kSegments = 1200;
constexpr int kFreqPoints = 40;

// The 2-port fixture of freq/ac_family.h at bench scale: matched lossless
// 50-ohm ladder, ~2400 unknowns, driven from port 1.
struct Fixture {
  Circuit circuit;
  int p2 = 0;

  Fixture() {
    const int p1 = circuit.addNode();
    p2 = circuit.addNode();
    const int s1 = circuit.addNode();
    TimeFn dark = [](double) { return 0.0; };
    VoltageSource* src = circuit.addVoltageSource(s1, Circuit::kGround, dark);
    src->setAcValue(Complex(1.0, 0.0));
    circuit.addResistor(s1, p1, 50.0);
    circuit.addResistor(p2, Circuit::kGround, 50.0);
    RlgcParams line;
    line.l = 2.5e-7;  // sqrt(l/c) = 50 ohm, td = 0.5 ns over 10 cm
    line.c = 1e-10;
    line.length = 0.1;
    line.segments = kSegments;
    buildRlgcLineSegments(circuit, p1, Circuit::kGround, p2, Circuit::kGround,
                          line);
  }
};

std::vector<double> logFrequencies() {
  std::vector<double> f(kFreqPoints);
  for (int k = 0; k < kFreqPoints; ++k)
    f[k] = 1e6 * std::pow(1e3, static_cast<double>(k) / (kFreqPoints - 1));
  return f;
}

struct AcTiming {
  double seconds = 0.0;
  std::size_t factorizations = 0;
  std::vector<Complex> h;  ///< V(p2) per frequency
};

// One session across all points: symbolic work amortized over the sweep.
AcTiming runShared(Fixture& fx, const std::vector<double>& freqs) {
  AcTiming t;
  const auto start = Clock::now();
  AcSession session(fx.circuit, AcOptions{});
  for (double f : freqs)
    t.h.push_back(acNodeV(session.solveAt(f), fx.p2));
  t.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  t.factorizations = session.factorizations();
  return t;
}

// Fresh session per point: CSR assembly + RCM analysis re-paid every time.
AcTiming runCold(Fixture& fx, const std::vector<double>& freqs) {
  AcTiming t;
  const auto start = Clock::now();
  for (double f : freqs) {
    AcSession session(fx.circuit, AcOptions{});
    t.h.push_back(acNodeV(session.solveAt(f), fx.p2));
    t.factorizations += session.factorizations();
  }
  t.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return t;
}

double maxRelDiff(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max(std::abs(a[i]), 1e-300);
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("=== bench_ac_sweep: shared vs per-frequency AC symbolic analysis ===");
  const double min_speedup =
      benchutil::minSpeedup(argc, argv, "FDTDMM_BENCH_MIN_AC_SPEEDUP", 2.0);
  int failures = 0;

  Fixture fx;
  const std::vector<double> freqs = logFrequencies();
  std::printf("  ladder: %zu segments, %d frequency points (1 MHz .. 1 GHz)\n",
              kSegments, kFreqPoints);

  const AcTiming cold = runCold(fx, freqs);
  const AcTiming shared = runShared(fx, freqs);
  const double speedup = cold.seconds / shared.seconds;
  const double h_diff = maxRelDiff(shared.h, cold.h);

  std::printf("%10s %9s %12s\n", "session", "factors", "wall [s]");
  std::printf("%10s %9zu %12.4f\n", "cold", cold.factorizations, cold.seconds);
  std::printf("%10s %9zu %12.4f\n", "shared", shared.factorizations,
              shared.seconds);
  std::printf("  speedup: %.2fx (gate: >= %.2fx, release builds)\n", speedup,
              min_speedup);
  std::printf("  max relative |H| difference: %.3g\n", h_diff);

  // Correctness invariants, any build: symbolic reuse must not change a
  // single transfer value, and neither path may skip or add factorizations.
  if (h_diff >= 1e-12) {
    std::puts("FAIL: shared and cold sessions disagree on H(jw)");
    ++failures;
  }
  if (shared.factorizations != freqs.size() ||
      cold.factorizations != freqs.size()) {
    std::puts("FAIL: expected exactly one complex factorization per point");
    ++failures;
  }
#ifdef NDEBUG
  if (speedup < min_speedup) {
    std::printf("FAIL: expected >= %.2fx from AC symbolic reuse\n", min_speedup);
    ++failures;
  }
#else
  std::puts("(non-optimized build: speedup reported, not gated)");
#endif

  const bool pass = failures == 0;
  using benchutil::num;
  const std::string json = std::string("{\n") +
      "  \"bench\": \"ac_sweep\",\n" +
      "  \"build\": \"" + benchutil::buildKind() + "\",\n" +
      "  \"min_speedup\": " + num(min_speedup) + ",\n" +
      "  \"segments\": " + std::to_string(kSegments) + ",\n" +
      "  \"frequency_points\": " + std::to_string(kFreqPoints) + ",\n" +
      "  \"seconds_shared\": " + num(shared.seconds) + ",\n" +
      "  \"seconds_cold\": " + num(cold.seconds) + ",\n" +
      "  \"speedup\": " + num(speedup) + ",\n" +
      "  \"max_rel_h_diff\": " + num(h_diff) + ",\n" +
      "  \"pass\": " + (pass ? "true" : "false") + "\n}\n";
  if (!benchutil::writeFile("BENCH_ac.json", json)) ++failures;
  std::puts("\nwrote BENCH_ac.json");

  if (failures == 0) std::puts("all checks passed");
  return failures == 0 ? 0 : 1;
}
