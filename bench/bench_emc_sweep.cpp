// EMC susceptibility throughput bench: the circuit-path (Taylor/Agrawal
// MNA) field-coupled line against the matched 3D FDTD incident run — the
// speedup that makes immunity *sweeps* practical. One FDTD reference run
// is timed against the same trace solved by runEmcScenario, the peak
// induced voltages are cross-checked (the physics gate), and a 12-corner
// angle x amplitude sweep is pushed through the parallel engine to report
// batched throughput.
//
// Exit status is nonzero (Release builds) if the per-scenario speedup of
// the circuit path falls below the floor (default 10x; override with
// --min-speedup=<x> / FDTDMM_BENCH_MIN_EMC_SPEEDUP for noisy CI runners),
// or — in any build — if the two engines' peak induced voltages disagree
// beyond the documented cross-validation tolerance. Writes BENCH_emc.json
// for the CI bench job's artifact trail.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "emc/fdtd_reference.h"
#include "engine/sweep_runner.h"

namespace {

using namespace fdtdmm;
using Clock = std::chrono::steady_clock;

double peakAbs(const Waveform& w) {
  double peak = 0.0;
  for (std::size_t k = 0; k < w.size(); ++k)
    peak = std::max(peak, std::abs(w[k]));
  return peak;
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("=== bench_emc_sweep: circuit-path EMC vs 3D FDTD incident run ===");
  const double min_speedup =
      benchutil::minSpeedup(argc, argv, "FDTDMM_BENCH_MIN_EMC_SPEEDUP", 10.0);
  int failures = 0;

  // --- One matched scenario: FDTD reference vs circuit path. ------------
  EmcFdtdReference ref;  // 24-cell trace over an infinite ground plane
  const EmcFdtdReferenceRun fdtd = runEmcFdtdReference(ref);
  const EmcScenario matched = matchedEmcScenario(ref);

  // Best of 3 for the (fast) circuit path; the FDTD run dominates anyway.
  double mna_seconds = 1e9;
  TaskWaveforms mna;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = Clock::now();
    mna = runEmcScenario(matched, nullptr, nullptr);
    mna_seconds = std::min(
        mna_seconds, std::chrono::duration<double>(Clock::now() - start).count());
  }

  const double speedup = fdtd.wall_seconds / mna_seconds;
  const double far_ratio = peakAbs(mna.v_far) / peakAbs(fdtd.v_far);
  const double near_ratio = peakAbs(mna.v_near) / peakAbs(fdtd.v_near);
  std::printf("  3D FDTD reference: %8.3f s   (grid incident run)\n",
              fdtd.wall_seconds);
  std::printf("  circuit-path MNA:  %8.4f s   -> %.0fx per scenario\n",
              mna_seconds, speedup);
  std::printf("  peak induced voltage ratio (MNA/FDTD): near %.3f, far %.3f\n",
              near_ratio, far_ratio);

  // Physics gate, always on: the cross-validation tolerance of
  // tests/test_emc_fdtd_xval.cpp with bench-level slack.
  if (!(far_ratio > 0.7 && far_ratio < 1.4) ||
      !(near_ratio > 0.7 && near_ratio < 1.4)) {
    std::puts("FAIL: circuit-path and FDTD induced peaks disagree beyond 40%");
    ++failures;
  }
#ifdef NDEBUG
  if (speedup < min_speedup) {
    std::printf("FAIL: expected >= %.1fx per-scenario speedup\n", min_speedup);
    ++failures;
  }
#else
  std::puts("(non-optimized build: speedup reported, not gated)");
#endif

  // --- Batched sweep throughput (the point of the family). --------------
  SweepSpec spec;
  spec.scenario = "emc";
  spec.set("drive", std::string("none"));
  spec.set("t_stop", 6e-9);
  spec.set("segments", 32.0);
  spec.set("pulse_t0", 2e-9);
  spec.axis("theta", {20.0, 40.0, 60.0, 90.0});
  spec.axis("amplitude", {500.0, 1000.0, 2000.0});
  SweepRunnerOptions opt;
  opt.workers = 0;
  SweepRunner runner(opt);
  const SweepResult sweep = runner.run(spec);
  if (sweep.okCount() != sweep.runs.size()) {
    std::puts("FAIL: sweep corners failed");
    ++failures;
  }
  const double per_corner = sweep.wall_seconds / static_cast<double>(sweep.runs.size());
  std::printf("  sweep: %zu corners on %zu workers in %.2f s (%.1f ms/corner)\n",
              sweep.runs.size(), sweep.workers, sweep.wall_seconds,
              1e3 * per_corner);
  std::printf("  the same grid at 3D FDTD cost would take ~%.0f s\n",
              fdtd.wall_seconds * static_cast<double>(sweep.runs.size()));

  const bool pass = failures == 0;
  using benchutil::num;
  const std::string json = std::string("{\n") +
      "  \"bench\": \"emc_sweep\",\n" +
      "  \"build\": \"" + benchutil::buildKind() + "\",\n" +
      "  \"min_speedup\": " + num(min_speedup) + ",\n" +
      "  \"fdtd_seconds\": " + num(fdtd.wall_seconds) + ",\n" +
      "  \"mna_seconds\": " + num(mna_seconds) + ",\n" +
      "  \"speedup\": " + num(speedup) + ",\n" +
      "  \"peak_ratio_near\": " + num(near_ratio) + ",\n" +
      "  \"peak_ratio_far\": " + num(far_ratio) + ",\n" +
      "  \"sweep_corners\": " + std::to_string(sweep.runs.size()) + ",\n" +
      "  \"sweep_seconds\": " + num(sweep.wall_seconds) + ",\n" +
      "  \"seconds_per_corner\": " + num(per_corner) + ",\n" +
      "  \"pass\": " + (pass ? "true" : "false") + "\n}\n";
  if (!benchutil::writeFile("BENCH_emc.json", json)) ++failures;
  std::puts("\nwrote BENCH_emc.json");

  if (failures == 0) std::puts("all checks passed");
  return failures == 0 ? 0 : 1;
}
