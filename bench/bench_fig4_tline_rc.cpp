// Reproduces Fig. 4 of the paper: termination voltages for the two-strip
// transmission line (Zc ~ 131 ohm, Td ~ 0.4 ns) with the switching driver
// at the near end and a linear RC load (1 pF || 500 ohm) at the far end.
//
// Four engines (as in the paper):
//   spice_tr  — SPICE, ideal line, transistor-level devices  (reference)
//   spice_rbf — SPICE, ideal line, RBF macromodels
//   fdtd1d    — 1D FDTD line, RBF macromodels
//   fdtd3d    — 3D FDTD full-wave (180 x 24 x 23 mesh), RBF macromodels
//
// Shape criteria (paper): all curves "very consistent"; only 3D-FDTD shows
// a marginal numerical-dispersion deviation. We print the waveform table
// and cross-engine NRMSE values.

#include <cstdio>

#include "core/tline_scenario.h"
#include "math/stats.h"

namespace {

double nrmseOnWindow(const fdtdmm::Waveform& a, const fdtdmm::Waveform& b,
                     double t1) {
  fdtdmm::Vector va, vb;
  for (double t = 0.0; t <= t1; t += 10e-12) {
    va.push_back(a.value(t));
    vb.push_back(b.value(t));
  }
  return fdtdmm::nrmse(va, vb);
}

}  // namespace

int main() {
  using namespace fdtdmm;
  std::puts("=== bench_fig4: transmission line with linear RC load, 4 engines ===");

  TlineScenario cfg;  // paper defaults: 180x24x23, delta = 0.723 mm
  cfg.load = FarEndLoad::kLinearRc;

  std::puts("# identifying macromodels (cached across benches in-process)...");
  const auto driver = defaultDriverModel();
  const auto receiver = defaultReceiverModel();

  std::puts("# engine (i): SPICE + transistor-level");
  const EngineRun e1 = runSpiceTransistorTline(cfg, defaultDriverDevice(),
                                               defaultReceiverDevice());
  std::puts("# engine (ii): SPICE + RBF macromodels");
  const EngineRun e2 = runSpiceRbfTline(cfg, driver, receiver);
  std::puts("# engine (iii): 1D FDTD + RBF macromodels");
  const EngineRun e3 = runFdtd1dTline(cfg, driver, receiver);
  std::puts("# engine (iv): 3D FDTD + RBF macromodels (this takes a while)");
  const EngineRun e4 = runFdtd3dTline(cfg, driver, receiver);

  std::puts("\nt_ns,near_spice_tr,near_spice_rbf,near_fdtd1d,near_fdtd3d,"
            "far_spice_tr,far_spice_rbf,far_fdtd1d,far_fdtd3d");
  for (double t = 0.0; t <= cfg.t_stop; t += 50e-12) {
    std::printf("%.2f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n", t * 1e9,
                e1.v_near.value(t), e2.v_near.value(t), e3.v_near.value(t),
                e4.v_near.value(t), e1.v_far.value(t), e2.v_far.value(t),
                e3.v_far.value(t), e4.v_far.value(t));
  }

  std::puts("\n# Cross-engine agreement (NRMSE over 0-5 ns, reference = spice_tr)");
  std::printf("near: spice_rbf %.4f | fdtd1d %.4f | fdtd3d %.4f\n",
              nrmseOnWindow(e2.v_near, e1.v_near, cfg.t_stop),
              nrmseOnWindow(e3.v_near, e1.v_near, cfg.t_stop),
              nrmseOnWindow(e4.v_near, e1.v_near, cfg.t_stop));
  std::printf("far : spice_rbf %.4f | fdtd1d %.4f | fdtd3d %.4f\n",
              nrmseOnWindow(e2.v_far, e1.v_far, cfg.t_stop),
              nrmseOnWindow(e3.v_far, e1.v_far, cfg.t_stop),
              nrmseOnWindow(e4.v_far, e1.v_far, cfg.t_stop));
  std::printf("\nwall seconds: spice_tr %.2f | spice_rbf %.2f | fdtd1d %.2f | fdtd3d %.2f\n",
              e1.wall_seconds, e2.wall_seconds, e3.wall_seconds, e4.wall_seconds);
  std::printf("max Newton iterations (paper: <= 3): spice_rbf %d | fdtd1d %d | fdtd3d %d\n",
              e2.max_newton_iterations, e3.max_newton_iterations,
              e4.max_newton_iterations);
  return 0;
}
