// Reproduces the paper's in-text efficiency claim (Section 1, via ref [6]):
// "The computational cost required for the transient simulation of such a
// macromodel can be much less than for the transistor level circuit. ...
// off-chip transceivers ... may be extremely complex and may require very
// long simulation times."
//
// The claim's shape is about *complexity scaling*: the macromodel's cost is
// a fixed set of parameters regardless of the device netlist, while the
// transistor-level cost grows with the number of devices. We sweep the
// structural complexity of the transistor-level driver (parallel output
// fingers + pre-driver stages, the way real off-chip drivers are built) and
// time identical '010' transient runs of both representations.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "circuit/transient.h"
#include "core/model_factory.h"
#include "devices/cmos_driver.h"
#include "rbf/driver_model.h"

namespace {

using namespace fdtdmm;
using Clock = std::chrono::steady_clock;

double timeTransistor(const CmosDriverParams& params, int repeats) {
  const auto t0 = Clock::now();
  for (int rep = 0; rep < repeats; ++rep) {
    Circuit c;
    const BitPattern pat("010", 2e-9);
    auto drv = buildCmosDriver(c, params, [pat](double t) {
      return static_cast<double>(pat.levelAt(t));
    });
    c.addResistor(drv.pad, Circuit::kGround, 100.0);
    TransientOptions opt;
    opt.dt = 2e-12;
    opt.t_stop = 6e-9;
    opt.settle_time = 2e-9;
    runTransient(c, opt, {{"v", drv.pad, 0}});
  }
  return std::chrono::duration<double>(Clock::now() - t0).count() / repeats;
}

double timeMacromodel(std::shared_ptr<const RbfDriverModel> model, int repeats) {
  const auto t0 = Clock::now();
  for (int rep = 0; rep < repeats; ++rep) {
    Circuit c;
    const BitPattern pat("010", 2e-9);
    const int pad = c.addNode();
    c.addBehavioralPort(pad, Circuit::kGround,
                        std::make_shared<RbfDriverPort>(model, pat));
    c.addResistor(pad, Circuit::kGround, 100.0);
    TransientOptions opt;
    opt.dt = 2e-12;
    opt.t_stop = 6e-9;
    opt.settle_time = 2e-9;
    runTransient(c, opt, {{"v", pad, 0}});
  }
  return std::chrono::duration<double>(Clock::now() - t0).count() / repeats;
}

}  // namespace

int main() {
  using namespace fdtdmm;
  std::puts("=== bench_speedup: transistor-level vs RBF macromodel transient cost ===");
  const auto model = defaultDriverModel();
  const double t_macro = timeMacromodel(model, 5);
  std::printf("\nmacromodel transient time (complexity-independent): %.4f s\n", t_macro);

  std::puts("\nfingers,pre_stages,t_transistor_s,speedup_vs_macromodel");
  for (const int complexity : {1, 4, 8, 16, 32, 64}) {
    CmosDriverParams params;
    params.output_fingers = complexity;
    params.pre_stages = std::max(1, complexity / 4);
    const double tt = timeTransistor(params, complexity >= 32 ? 1 : 3);
    std::printf("%d,%d,%.4f,%.2fx\n", complexity, params.pre_stages, tt, tt / t_macro);
  }
  std::puts("\npaper shape: the macromodel cost is flat while the transistor-level");
  std::puts("cost grows superlinearly with device complexity, so the speedup");
  std::puts("becomes arbitrarily large for realistic off-chip transceivers.");
  return 0;
}
