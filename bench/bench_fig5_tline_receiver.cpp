// Reproduces Fig. 5 of the paper: the same transmission line as Fig. 4 but
// with the RBF *receiver* macromodel as the far-end load. The paper plots
// SPICE (RBF model) vs 3D-FDTD; we additionally print the 1D-FDTD curve.

#include <cstdio>

#include "core/tline_scenario.h"
#include "math/stats.h"

namespace {

double nrmseOnWindow(const fdtdmm::Waveform& a, const fdtdmm::Waveform& b,
                     double t1) {
  fdtdmm::Vector va, vb;
  for (double t = 0.0; t <= t1; t += 10e-12) {
    va.push_back(a.value(t));
    vb.push_back(b.value(t));
  }
  return fdtdmm::nrmse(va, vb);
}

}  // namespace

int main() {
  using namespace fdtdmm;
  std::puts("=== bench_fig5: transmission line with RBF receiver load ===");

  TlineScenario cfg;
  cfg.load = FarEndLoad::kReceiver;

  const auto driver = defaultDriverModel();
  const auto receiver = defaultReceiverModel();

  std::puts("# engine (ii): SPICE + RBF macromodels");
  const EngineRun spice = runSpiceRbfTline(cfg, driver, receiver);
  std::puts("# engine (iii): 1D FDTD + RBF macromodels");
  const EngineRun f1d = runFdtd1dTline(cfg, driver, receiver);
  std::puts("# engine (iv): 3D FDTD + RBF macromodels");
  const EngineRun f3d = runFdtd3dTline(cfg, driver, receiver);

  std::puts("\nt_ns,driver_spice_rbf,driver_fdtd1d,driver_fdtd3d,"
            "receiver_spice_rbf,receiver_fdtd1d,receiver_fdtd3d");
  for (double t = 0.0; t <= cfg.t_stop; t += 50e-12) {
    std::printf("%.2f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n", t * 1e9,
                spice.v_near.value(t), f1d.v_near.value(t), f3d.v_near.value(t),
                spice.v_far.value(t), f1d.v_far.value(t), f3d.v_far.value(t));
  }

  std::puts("\n# Agreement (NRMSE, reference = spice_rbf; paper: curves overlap");
  std::puts("# except a marginal 3D dispersion deviation)");
  std::printf("driver  : fdtd1d %.4f | fdtd3d %.4f\n",
              nrmseOnWindow(f1d.v_near, spice.v_near, cfg.t_stop),
              nrmseOnWindow(f3d.v_near, spice.v_near, cfg.t_stop));
  std::printf("receiver: fdtd1d %.4f | fdtd3d %.4f\n",
              nrmseOnWindow(f1d.v_far, spice.v_far, cfg.t_stop),
              nrmseOnWindow(f3d.v_far, spice.v_far, cfg.t_stop));
  std::printf("\nmax Newton iterations (paper: <= 3 at tol 1e-9): spice %d | 1d %d | 3d %d\n",
              spice.max_newton_iterations, f1d.max_newton_iterations,
              f3d.max_newton_iterations);
  return 0;
}
