// Reproduces Fig. 2 of the paper: stability of the discrete -> continuous
// -> resampled time conversion applied to the linear test problem
// (Eqs. 14-16). Prints the three panels as data series plus an empirical
// verification on random state matrices.
//
// Paper claims reproduced here:
//  * the unit circle |lambda| = 1 maps to Re(eta) <= 0 (continuous panel);
//  * the resampled eigenvalues lie on the circle centered at (1 - tau)
//    with radius tau (third panel), hence stability iff tau <= 1 (Eq. 17).

#include <complex>
#include <cstdio>

#include "math/rng.h"
#include "math/spectral.h"
#include "rbf/resampling.h"

int main() {
  using namespace fdtdmm;
  std::puts("=== bench_fig2_stability: eigenvalue maps of the resampling chain ===");

  const double ts = 50e-12;
  const double taus[] = {0.25, 0.5, 1.0};

  std::puts("\n# Panel 1->2->3 samples: unit-circle lambda, continuous eta*Ts,");
  std::puts("# resampled lambda~ for each tau.");
  std::puts("theta_deg,Re(lambda),Im(lambda),Re(eta*Ts),Im(eta*Ts),"
            "tau,Re(lambda~),Im(lambda~),abs(lambda~)");
  for (int k = 0; k < 24; ++k) {
    const double th = 2.0 * 3.14159265358979323846 * k / 24.0;
    const std::complex<double> lam(std::cos(th), std::sin(th));
    const std::complex<double> eta = continuousEigenvalue(lam, ts);
    for (const double tau : taus) {
      const std::complex<double> lt = resampleEigenvalue(lam, tau);
      std::printf("%5.1f,%+.4f,%+.4f,%+.4f,%+.4f,%.2f,%+.4f,%+.4f,%.4f\n",
                  th * 180.0 / 3.14159265358979323846, lam.real(), lam.imag(),
                  (eta * ts).real(), (eta * ts).imag(), tau, lt.real(), lt.imag(),
                  std::abs(lt));
    }
  }

  std::puts("\n# Circle law check: |lambda~ - (1 - tau)| == tau for |lambda| = 1");
  Rng rng(3);
  double worst = 0.0;
  for (int trial = 0; trial < 2000; ++trial) {
    const double th = rng.uniform(0.0, 6.283185307179586);
    const std::complex<double> lam(std::cos(th), std::sin(th));
    const double tau = rng.uniform(0.01, 1.0);
    const double dev =
        std::abs(std::abs(resampleEigenvalue(lam, tau) - std::complex<double>(1.0 - tau, 0.0)) - tau);
    worst = std::max(worst, dev);
  }
  std::printf("max |circle deviation| over 2000 samples: %.3e (expect ~1e-16)\n", worst);

  std::puts("\n# Empirical spectral radii of resampled random stable systems");
  std::puts("n,rho(A),tau,rho(A~),stable");
  int violations = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + trial % 5;
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
    const double rho0 = spectralRadius(a);
    if (rho0 <= 0.0) continue;
    a *= rng.uniform(0.5, 0.98) / rho0;
    const double rho = spectralRadius(a);
    const double tau = rng.uniform(0.05, 1.0);
    const double rho_t = spectralRadius(resampleStateMatrix(a, tau));
    const bool stable = rho_t < 1.0 + 1e-9;
    if (!stable) ++violations;
    std::printf("%zu,%.4f,%.3f,%.4f,%s\n", n, rho, tau, rho_t, stable ? "yes" : "NO");
  }
  std::printf("\nstability violations for tau <= 1: %d (paper: none possible)\n",
              violations);

  std::puts("\n# Extrapolation (tau > 1) loses the guarantee (Eq. 17):");
  const auto bad = resampleEigenvalue(std::complex<double>(-0.9, 0.0), 1.2);
  std::printf("lambda = -0.9, tau = 1.2 -> |lambda~| = %.4f (> 1: unstable)\n",
              std::abs(bad));
  return violations == 0 ? 0 : 1;
}
